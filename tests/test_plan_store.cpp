// Tests for the persistent plan service (src/autosched/plan_store.*,
// src/autosched/cache.*): the versioned JSON store round-trips every recipe
// field, corrupt or version-mismatched documents are rejected wholesale, a
// warm process compiles with zero searches, concurrent writers sharing one
// file lose no entries, the fuzzy fingerprint tier respects its tolerance
// boundary exactly, concurrent Runtimes sharing one store are race-free,
// and set_plan_store(false) restores bit-identical searched schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "autosched/autosched.h"
#include "autosched/cost.h"
#include "autosched/plan_store.h"
#include "common/str_util.h"
#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "tensor/dense_ref.h"

namespace spdistal::autosched {
namespace {

using rt::Coord;

rt::Machine cpu_machine(int nodes) {
  return rt::Machine(data::paper_machine_config(nodes), rt::Grid(nodes),
                     rt::ProcKind::CPU);
}

// Arms the plan service for one test (clean cache, store on, fuzz off) and
// restores the previous global state on exit.
struct StoreGuard {
  bool prev_on;
  double prev_fuzz;
  StoreGuard() : prev_on(plan_store_enabled()), prev_fuzz(plan_fuzz()) {
    PlanCache::global().clear();
    set_plan_store(true);
    set_plan_fuzz(0.0);
  }
  ~StoreGuard() {
    PlanCache::global().clear();
    set_plan_store(prev_on);
    set_plan_fuzz(prev_fuzz);
  }
};

struct BuiltStmt {
  Tensor out;
  Statement* stmt = nullptr;
};

BuiltStmt build_spmv(uint64_t seed) {
  IndexVar i("i"), j("j");
  const Coord n = 300;
  Tensor a("a", {n}, fmt::dense_vector());
  Tensor B("B", {n, n}, fmt::csr());
  Tensor c("c", {n}, fmt::dense_vector());
  B.from_coo(data::powerlaw_matrix(n, n, 4000, 1.3, seed));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  BuiltStmt b;
  b.stmt = &(a(i) = B(i, j) * c(j));
  b.out = a;
  return b;
}

// A pattern-bearing fingerprint with deterministic sketch content.
data::SparsityFingerprint pattern_fp(int64_t nnz) {
  data::SparsityFingerprint fp;
  fp.dims = {100, 100};
  fp.has_pattern = true;
  fp.nnz = nnz;
  for (int b = 0; b < data::SparsityFingerprint::kHistBuckets; ++b) {
    fp.hist[static_cast<size_t>(b)] = nnz / 16;
  }
  fp.degree[3] = 100;
  return fp;
}

StoredPlan make_entry(const std::string& structural, const Recipe& r,
                      const std::vector<data::SparsityFingerprint>& fps,
                      double cost) {
  StoredPlan e;
  e.structural = structural;
  e.sig = data::fingerprints_str(fps);
  e.plan = CachedPlan{r, cost, fps, false};
  return e;
}

void write_file(const std::string& path, const std::string& doc) {
  std::ofstream out(path, std::ios::trunc);
  out << doc;
}

// --- serialization ------------------------------------------------------------

TEST(PlanStore, JsonRoundTripPreservesEveryRecipeField) {
  Recipe universe;
  universe.position_space = false;
  universe.pieces = 4;
  universe.pieces_y = 2;
  universe.pieces_z = 2;
  universe.communicate_all = true;
  universe.unit = sched::ParallelUnit::CPUThread;

  Recipe pos;
  pos.position_space = true;
  pos.pieces = 8;
  pos.split_tensor = "B";
  pos.fuse_depth = 2;
  pos.unit = sched::ParallelUnit::GPUWarp;

  Recipe minimal;  // defaults: 1 piece, no unit

  // Structural halves carry format signatures with JSON-hostile punctuation
  // ({}, [], quotes, backslashes) — the codec must escape them losslessly.
  const std::string s1 = "a(i)=B(i,j)*c(j);B:{d,s}ord[0,1];m:CPUx4";
  const std::string s2 = "odd \"quoted\" and back\\slashed key";
  const std::vector<StoredPlan> in = {
      make_entry(s1, universe, {data::dense_fingerprint({300}),
                                pattern_fp(4000)}, 1.25e-3),
      make_entry(s2, pos, {pattern_fp(777)}, 3.5e-2),
      make_entry("minimal", minimal, {data::dense_fingerprint({7, 9})}, 0.0),
  };
  const std::vector<StoredPlan> out = parse_plan_store(plan_store_json(in));
  ASSERT_EQ(out.size(), in.size());
  for (size_t k = 0; k < in.size(); ++k) {
    EXPECT_EQ(out[k].structural, in[k].structural) << k;
    EXPECT_EQ(out[k].sig, in[k].sig) << k;
    EXPECT_EQ(out[k].plan.recipe, in[k].plan.recipe) << k;
    EXPECT_DOUBLE_EQ(out[k].plan.cost, in[k].plan.cost) << k;
    EXPECT_EQ(out[k].plan.fps, in[k].plan.fps) << k;
  }
}

TEST(PlanStore, CorruptDocumentsAreRejectedWholesale) {
  EXPECT_TRUE(parse_plan_store("").empty());
  EXPECT_TRUE(parse_plan_store("not json at all").empty());
  EXPECT_TRUE(parse_plan_store("{}").empty());  // no version field
  const std::string good = plan_store_json(
      {make_entry("k", Recipe{}, {pattern_fp(100)}, 1.0),
       make_entry("k2", Recipe{}, {pattern_fp(200)}, 2.0)});
  ASSERT_EQ(parse_plan_store(good).size(), 2u);
  // Structural damage anywhere poisons the whole document — a half-written
  // file must never be partially applied.
  EXPECT_TRUE(parse_plan_store(good.substr(0, good.size() / 2)).empty());
  std::string truncated = good;
  truncated.resize(truncated.find("k2") + 1);
  EXPECT_TRUE(parse_plan_store(truncated).empty());
}

TEST(PlanStore, UnknownSchemaVersionIsRejected) {
  std::string doc = plan_store_json(
      {make_entry("k", Recipe{}, {pattern_fp(100)}, 1.0)});
  const std::string needle = "\"version\": 2";
  const size_t at = doc.find(needle);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, needle.size(), "\"version\": 99");
  EXPECT_TRUE(parse_plan_store(doc).empty());
  // Below the readable floor is rejected too.
  std::string old = plan_store_json({});
  const size_t at0 = old.find(needle);
  ASSERT_NE(at0, std::string::npos);
  old.replace(at0, needle.size(), "\"version\": 0");
  EXPECT_TRUE(parse_plan_store(old).empty());
}

TEST(PlanStore, EntryFromNewerBuildIsSkippedAlone) {
  std::string doc = plan_store_json(
      {make_entry("k1", Recipe{}, {pattern_fp(100)}, 1.0),
       make_entry("k2", Recipe{}, {pattern_fp(200)}, 2.0)});
  // A parallel unit this build does not know: that entry is unusable, but
  // the rest of a well-formed document still loads.
  const std::string needle = "\"key\": \"k1\"";
  const size_t at = doc.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::string mutated = doc;
  const std::string unit_needle = "\"unit\": \"\"";
  const size_t ua = mutated.find(unit_needle, at);
  ASSERT_NE(ua, std::string::npos);
  mutated.replace(ua, unit_needle.size(), "\"unit\": \"QPULane\"");
  const auto out = parse_plan_store(mutated);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].structural, "k2");
}

TEST(PlanStore, LoadRejectsMissingAndCorruptFiles) {
  StoreGuard guard;
  EXPECT_EQ(load_plan_store("definitely_missing_plan_store.json"), 0u);
  const std::string path = "test_plan_store_corrupt.json";
  write_file(path, "{\"version\": 1, \"plans\": [{\"key\": \"trunc");
  EXPECT_EQ(load_plan_store(path), 0u);
  EXPECT_EQ(PlanCache::global().size(), 0u);
  std::remove(path.c_str());
}

// --- warm-process serving -----------------------------------------------------

TEST(PlanStore, WarmProcessCompilesWithZeroSearches) {
  StoreGuard guard;
  const rt::Machine m = cpu_machine(4);
  const std::string path = "test_plan_store_warm.json";
  std::remove(path.c_str());

  BuiltStmt a = build_spmv(3);
  const Result cold = autoschedule_search(*a.stmt, m);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_GT(cold.enumerated, 0);
  ASSERT_TRUE(save_plan_store(path));

  // A warm sibling process: empty cache, store loaded from disk.
  PlanCache::global().clear();
  ASSERT_GE(load_plan_store(path), 1u);
  EXPECT_GE(PlanCache::global().loaded(), 1);

  BuiltStmt b = build_spmv(3);  // fresh tensors, same logical computation
  const Result warm = autoschedule_search(*b.stmt, m);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_FALSE(warm.fuzzy);
  EXPECT_EQ(warm.enumerated, 0);
  EXPECT_EQ(warm.simulated, 0);
  EXPECT_EQ(warm.recipe, cold.recipe);
  EXPECT_GE(PlanCache::global().hits(), 1);

  // The served schedule must still compute the right answer.
  rt::Runtime runtime(m);
  auto inst = comp::CompiledKernel::compile(*b.stmt, warm.schedule, m)
                  .instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10);
  std::remove(path.c_str());
}

TEST(PlanStore, ConcurrentWritersUnionThroughOneFile) {
  StoreGuard guard;
  const std::string path = "test_plan_store_union.json";
  std::remove(path.c_str());

  // Writer 1 persists entry A.
  Recipe ra;
  ra.pieces = 2;
  PlanCache::global().insert_stored(
      {make_entry("shape-A", ra, {pattern_fp(100)}, 1.0)});
  ASSERT_TRUE(save_plan_store(path));

  // Writer 2 (a sibling process that never saw A) persists entry B to the
  // same file: the save re-reads, unions, and loses nothing.
  PlanCache::global().clear();
  Recipe rb;
  rb.pieces = 8;
  PlanCache::global().insert_stored(
      {make_entry("shape-B", rb, {pattern_fp(200)}, 2.0)});
  ASSERT_TRUE(save_plan_store(path));

  PlanCache::global().clear();
  EXPECT_EQ(load_plan_store(path), 2u);
  EXPECT_EQ(PlanCache::global().size(), 2u);

  // On a key collision the in-memory entry (fresher) wins over the disk one.
  PlanCache::global().clear();
  Recipe ra2;
  ra2.pieces = 16;
  PlanCache::global().insert_stored(
      {make_entry("shape-A", ra2, {pattern_fp(100)}, 9.0)});
  ASSERT_TRUE(save_plan_store(path));
  PlanCache::global().clear();
  EXPECT_EQ(load_plan_store(path), 2u);
  bool saw_a = false;
  for (const StoredPlan& e : PlanCache::global().entries()) {
    if (e.structural == "shape-A") {
      saw_a = true;
      EXPECT_EQ(e.plan.recipe.pieces, 16);
    }
  }
  EXPECT_TRUE(saw_a);
  std::remove(path.c_str());
}

// --- fuzzy tier ---------------------------------------------------------------

TEST(PlanStore, FuzzyTierRespectsToleranceBoundary) {
  StoreGuard guard;
  PlanCache& cache = PlanCache::global();

  const data::SparsityFingerprint fp_a = pattern_fp(1000);
  const data::SparsityFingerprint fp_b = pattern_fp(1150);  // nearby nnz
  const double d = fp_a.distance(fp_b);
  ASSERT_GT(d, 0.0);
  ASSERT_LT(d, 1.0);

  Recipe r;
  r.pieces = 4;
  PlanKey key_a{"same-structural", data::fingerprints_str({fp_a}), {fp_a}};
  PlanKey key_b{"same-structural", data::fingerprints_str({fp_b}), {fp_b}};
  cache.insert(key_a, r, 1.0);

  // Exact tier: only the identical fingerprint hits.
  auto exact = cache.lookup(key_a);
  ASSERT_TRUE(exact.has_value());
  EXPECT_FALSE(exact->fuzzy);

  // Fuzz off: a nearby fingerprint is a miss.
  set_plan_fuzz(0.0);
  EXPECT_FALSE(cache.lookup(key_b).has_value());

  // Tolerance below the distance: still a miss.
  set_plan_fuzz(d * 0.5);
  EXPECT_FALSE(cache.lookup(key_b).has_value());

  // Tolerance at/above the distance: served by the fuzzy tier.
  set_plan_fuzz(d * 1.01);
  auto fuzzy = cache.lookup(key_b);
  ASSERT_TRUE(fuzzy.has_value());
  EXPECT_TRUE(fuzzy->fuzzy);
  EXPECT_EQ(fuzzy->recipe, r);
  EXPECT_GE(cache.fuzzy_hits(), 1);

  // A different structural half never fuzzy-matches, whatever the tolerance.
  PlanKey other{"other-structural", key_b.sig, key_b.fps};
  set_plan_fuzz(0.99);
  EXPECT_FALSE(cache.lookup(other).has_value());

  // The fuzzy tier is part of the plan service: disabling the store
  // disables it too.
  set_plan_store(false);
  EXPECT_FALSE(cache.lookup(key_b).has_value());
  // ... but exact hits on plans searched in this process survive.
  EXPECT_TRUE(cache.lookup(key_a).has_value());
}

TEST(PlanStore, FingerprintDistanceSeparatesShapes) {
  const auto fp = pattern_fp(1000);
  EXPECT_EQ(fp.distance(fp), 0.0);
  // Different dimensionality: incomparable.
  EXPECT_TRUE(std::isinf(fp.distance(data::dense_fingerprint({100}))));
  // Pattern vs structural-only of the same dims: incomparable.
  EXPECT_TRUE(std::isinf(fp.distance(data::dense_fingerprint({100, 100}))));
  // Round-trip through the canonical encoding is exact.
  const auto parsed = data::SparsityFingerprint::parse(fp.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
  EXPECT_EQ(fp.distance(*parsed), 0.0);
}

// --- concurrency --------------------------------------------------------------

// Concurrent Runtimes in one process sharing the global plan service:
// threads search (warm store hits), insert fresh synthetic plans, and
// save/load the same file. Run under TSan in CI; values checked here.
TEST(PlanStore, ConcurrentRuntimesShareOneStoreCleanly) {
  StoreGuard guard;
  const rt::Machine m = cpu_machine(2);
  const std::string path = "test_plan_store_conc.json";
  std::remove(path.c_str());

  // One cold search seeds the store.
  BuiltStmt seed = build_spmv(11);
  const Result cold = autoschedule_search(*seed.stmt, m);
  ASSERT_TRUE(save_plan_store(path));
  PlanCache::global().clear();
  ASSERT_GE(load_plan_store(path), 1u);

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> warm_hits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int it = 0; it < 3; ++it) {
        // Each iteration: its own Runtime compiling the shared shape.
        BuiltStmt b = build_spmv(11);
        const Result r = autoschedule_search(*b.stmt, m);
        if (r.from_cache) ++warm_hits[static_cast<size_t>(t)];
        rt::Runtime runtime(m);
        auto inst =
            comp::CompiledKernel::compile(*b.stmt, r.schedule, m)
                .instantiate(runtime);
        inst->run(1);
        EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10);
        // Interleave service traffic: fresh inserts and file round-trips.
        Recipe synth;
        synth.pieces = 2 + t;
        PlanCache::global().insert(
            PlanKey{strprintf("synthetic-%d-%d", t, it),
                    data::fingerprints_str({pattern_fp(100 + t)}),
                    {pattern_fp(100 + t)}},
            synth, 1.0);
        if (t % 2 == 0) {
          save_plan_store(path);
        } else {
          load_plan_store(path);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every search after the seed was served warm from the shared store.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(warm_hits[static_cast<size_t>(t)], 3) << "thread " << t;
  }
  EXPECT_EQ(PlanCache::global().misses(), 0);
  BuiltStmt check = build_spmv(11);
  EXPECT_EQ(autoschedule_search(*check.stmt, m).recipe, cold.recipe);
  std::remove(path.c_str());
}

// --- bit-identity with the store disabled -------------------------------------

TEST(PlanStore, DisabledStoreRestoresSearchedSchedules) {
  StoreGuard guard;
  const rt::Machine m = cpu_machine(4);

  // Baseline: two cold full searches are deterministic and bit-identical.
  BuiltStmt a = build_spmv(7);
  set_plan_store(false);
  const Result base = autoschedule_search(*a.stmt, m);
  EXPECT_FALSE(base.from_cache);
  PlanCache::global().clear();
  const Result again = autoschedule_search(*a.stmt, m);
  EXPECT_EQ(again.recipe, base.recipe);
  EXPECT_EQ(again.schedule.str(), base.schedule.str());

  // Poison the cache with a *stored* entry for this exact key whose recipe
  // differs from the searched winner.
  const PlanKey key = plan_key(*a.stmt, m);
  Recipe poison = base.recipe;
  poison.pieces = base.recipe.pieces == 2 ? 4 : 2;
  StoredPlan sp;
  sp.structural = key.structural;
  sp.sig = key.sig;
  sp.plan = CachedPlan{poison, 123.0, key.fps, false};
  PlanCache::global().clear();
  ASSERT_EQ(PlanCache::global().insert_stored({sp}), 1u);

  // Store on: the poisoned entry is served.
  set_plan_store(true);
  const Result served = autoschedule_search(*a.stmt, m);
  EXPECT_TRUE(served.from_cache);
  EXPECT_EQ(served.recipe, poison);

  // Store off: the stored entry is invisible; the full search reproduces
  // the bit-identical baseline even though the entry is still cached.
  set_plan_store(false);
  const Result fresh = autoschedule_search(*a.stmt, m);
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_EQ(fresh.recipe, base.recipe);
  EXPECT_EQ(fresh.schedule.str(), base.schedule.str());

  // The per-search override mirrors the global switch.
  set_plan_store(true);
  PlanCache::global().clear();
  PlanCache::global().insert_stored({sp});
  Options no_store;
  no_store.use_store = false;
  const Result opted_out = autoschedule_search(*a.stmt, m, no_store);
  EXPECT_FALSE(opted_out.from_cache);
  EXPECT_EQ(opted_out.recipe, base.recipe);
}

// --- fuzzy re-pricing ---------------------------------------------------------

// A fuzzy hit's stored cost was simulated for a *sibling* shape; the plan
// service re-prices the served recipe with the analytic model against the
// actual operand fingerprints before reporting it.
TEST(PlanStore, FuzzyHitsRepriceAgainstActualFingerprints) {
  StoreGuard guard;
  const rt::Machine m = cpu_machine(4);

  auto build = [](int64_t nnz) {
    IndexVar i("i"), j("j");
    const Coord n = 300;
    Tensor a("a", {n}, fmt::dense_vector());
    Tensor B("B", {n, n}, fmt::csr());
    Tensor c("c", {n}, fmt::dense_vector());
    B.from_coo(data::powerlaw_matrix(n, n, nnz, 1.3, 3));
    c.init_dense([](const auto&) { return 1.0; });
    BuiltStmt b;
    b.stmt = &(a(i) = B(i, j) * c(j));
    b.out = a;
    return b;
  };

  BuiltStmt a = build(4000);
  const Result cold = autoschedule_search(*a.stmt, m);
  ASSERT_FALSE(cold.from_cache);

  set_plan_fuzz(0.9);
  BuiltStmt b = build(4400);  // nearby shape: served by the fuzzy tier
  const Result warm = autoschedule_search(*b.stmt, m);
  ASSERT_TRUE(warm.from_cache);
  ASSERT_TRUE(warm.fuzzy);
  AnalyticModel model(*b.stmt, m);
  EXPECT_DOUBLE_EQ(warm.best_cost, model.estimate(warm.recipe));
}

// --- eviction -----------------------------------------------------------------

// SPDISTAL_PLAN_STORE_MAX (set_plan_store_max) caps the saved document:
// save keeps the most recently *used* entries and evicts the rest
// oldest-first. Lookups refresh an entry's stamp, so a hot plan survives
// entries inserted after it.
TEST(PlanStore, SaveEvictsLeastRecentlyUsedBeyondCap) {
  StoreGuard guard;
  const int64_t prev_cap = plan_store_max();
  const std::string path = "test_plan_store_evict.json";
  std::remove(path.c_str());
  set_plan_store_max(2);

  std::vector<PlanKey> keys;
  for (int k = 0; k < 4; ++k) {
    Recipe r;
    r.pieces = 1 << k;
    PlanKey key{strprintf("shape-%d", k),
                data::fingerprints_str({pattern_fp(100 + k)}),
                {pattern_fp(100 + k)}};
    keys.push_back(key);
    PlanCache::global().insert(key, r, static_cast<double>(k));
  }
  // Touch 0 and 2: despite being inserted earlier, they are now the two
  // most recently used entries.
  ASSERT_TRUE(PlanCache::global().lookup(keys[0]).has_value());
  ASSERT_TRUE(PlanCache::global().lookup(keys[2]).has_value());

  ASSERT_TRUE(save_plan_store(path));
  PlanCache::global().clear();
  EXPECT_EQ(load_plan_store(path), 2u);
  std::vector<int> survivors;
  for (const StoredPlan& e : PlanCache::global().entries()) {
    survivors.push_back(e.plan.recipe.pieces);
  }
  std::sort(survivors.begin(), survivors.end());
  EXPECT_EQ(survivors, (std::vector<int>{1 << 0, 1 << 2}));

  // Cap 0 disables eviction: everything persists.
  set_plan_store_max(0);
  PlanCache::global().clear();
  for (int k = 0; k < 4; ++k) {
    Recipe r;
    r.pieces = 1 << k;
    PlanCache::global().insert(keys[static_cast<size_t>(k)], r, 0.0);
  }
  std::remove(path.c_str());
  ASSERT_TRUE(save_plan_store(path));
  PlanCache::global().clear();
  EXPECT_EQ(load_plan_store(path), 4u);

  set_plan_store_max(prev_cap);
  std::remove(path.c_str());
}

// --- schema compatibility -----------------------------------------------------

// v1 documents (no per-entry "used" stamp) still load: their entries carry
// stamp 0, making them the first candidates for eviction.
TEST(PlanStore, V1DocumentsStillLoad) {
  StoreGuard guard;
  Recipe r;
  r.pieces = 4;
  std::string doc =
      plan_store_json({make_entry("v1-shape", r, {pattern_fp(100)}, 2.5)});
  const std::string vneedle = "\"version\": 2";
  const size_t at = doc.find(vneedle);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, vneedle.size(), "\"version\": 1");
  // Strip the v2-only "used" stamps, turning the document into exactly
  // what a v1 build would have written.
  for (size_t u = doc.find("\"used\": "); u != std::string::npos;
       u = doc.find("\"used\": ", u)) {
    const size_t comma = doc.find(',', u);
    ASSERT_NE(comma, std::string::npos);
    doc.erase(u, comma + 2 - u);
  }
  const auto parsed = parse_plan_store(doc);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].structural, "v1-shape");
  EXPECT_EQ(parsed[0].plan.recipe, r);
  EXPECT_DOUBLE_EQ(parsed[0].plan.cost, 2.5);
  EXPECT_EQ(parsed[0].plan.used->load(), 0);

  const std::string path = "test_plan_store_v1.json";
  write_file(path, doc);
  EXPECT_EQ(load_plan_store(path), 1u);
  EXPECT_EQ(PlanCache::global().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spdistal::autosched
