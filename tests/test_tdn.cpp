// Tests for tensor distribution notation: parsing, materialization of
// universe / non-zero / fused partitions (Figure 5), and placement
// installation.
#include <gtest/gtest.h>

#include "tdn/tdn.h"

namespace spdistal::tdn {
namespace {

using fmt::Coo;
using rt::Coord;

rt::Machine cpu_machine(int nodes) {
  rt::MachineConfig cfg;
  cfg.nodes = nodes;
  return rt::Machine(cfg, rt::Grid(nodes), rt::ProcKind::CPU);
}

fmt::TensorStorage skewed_csr(Coord n) {
  // Row 0 holds half of all non-zeros; remaining rows one each.
  Coo coo;
  coo.dims = {n, n};
  for (Coord j = 0; j < n; ++j) coo.push({0, j}, 1.0);
  for (Coord i = 1; i < n; ++i) coo.push({i, 0}, 2.0);
  return fmt::pack("B", fmt::csr(), {n, n}, std::move(coo));
}

TEST(TdnParse, RowWise) {
  Distribution d = parse_tdn("B(x, y) -> M(x)");
  EXPECT_EQ(d.tensor_vars().size(), 2u);
  EXPECT_EQ(d.machine_vars().size(), 1u);
  EXPECT_TRUE(d.tensor_vars()[0] == d.machine_vars()[0]);
  EXPECT_FALSE(d.is_nonzero(d.machine_vars()[0]));
  EXPECT_EQ(d.str("B"), "B(x, y) -> M(x)");
}

TEST(TdnParse, Replicated) {
  Distribution d = parse_tdn("c(x) -> M(y)");
  EXPECT_FALSE(d.tensor_vars()[0] == d.machine_vars()[0]);
}

TEST(TdnParse, NonZero) {
  Distribution d = parse_tdn("v(x) -> M(~x)");
  EXPECT_TRUE(d.is_nonzero(d.machine_vars()[0]));
  EXPECT_EQ(d.str("v"), "v(x) -> M(~x)");
}

TEST(TdnParse, FusedNonZero) {
  Distribution d = parse_tdn("B(x, y) fuse(x, y -> f) -> M(~f)");
  ASSERT_EQ(d.fusions().size(), 1u);
  EXPECT_EQ(d.fusions()[0].from.size(), 2u);
  EXPECT_TRUE(d.fusions()[0].to == d.machine_vars()[0]);
  EXPECT_TRUE(d.is_nonzero(d.machine_vars()[0]));
  EXPECT_EQ(d.str("B"), "B(x, y) fuse(x, y -> f) -> M(~f)");
}

TEST(TdnParse, RejectsGarbage) {
  EXPECT_THROW(parse_tdn("B(x, y) M(x)"), NotationError);
  EXPECT_THROW(parse_tdn("nonsense"), NotationError);
}

// Figure 5a analogue: universe partition of a skewed matrix's rows gives
// unbalanced non-zeros.
TEST(TdnMaterialize, UniverseRowPartitionIsImbalanced) {
  auto st = skewed_csr(16);
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("B(x, y) -> M(x)"),
                               cpu_machine(4));
  ASSERT_FALSE(m.replicated);
  ASSERT_EQ(m.partition.vals_part.num_colors(), 4);
  // Color 0 holds rows 0..3: 16 + 3 = 19 of the 31 values.
  EXPECT_EQ(m.partition.vals_part.subset(0).volume(), 19);
  EXPECT_EQ(m.partition.vals_part.subset(3).volume(), 4);
}

// Figure 5c analogue: the fused non-zero partition balances values evenly.
TEST(TdnMaterialize, FusedNonZeroBalances) {
  auto st = skewed_csr(16);
  comp::PlanTrace trace;
  Materialized m = materialize(
      trace, st, parse_tdn("B(x, y) fuse(x, y -> f) -> M(~f)"),
      cpu_machine(4));
  ASSERT_FALSE(m.replicated);
  // 31 non-zeros over 4 pieces: 7/8/8/8.
  int64_t mx = 0, mn = 1 << 30;
  for (int c = 0; c < 4; ++c) {
    mx = std::max(mx, m.partition.vals_part.subset(c).volume());
    mn = std::min(mn, m.partition.vals_part.subset(c).volume());
  }
  EXPECT_LE(mx - mn, 1);
  EXPECT_TRUE(m.partition.vals_part.complete());
  EXPECT_TRUE(m.partition.vals_part.disjoint());
}

// Non-zero partition of the first dimension (~x): splits *stored rows*
// equally, not coordinates.
TEST(TdnMaterialize, NonZeroDim0OnDcsr) {
  Coo coo;
  coo.dims = {100, 4};
  // Only rows 90..97 are non-empty.
  for (Coord i = 90; i < 98; ++i) coo.push({i, 0}, 1.0);
  auto st = fmt::pack("B", fmt::dcsr(), {100, 4}, std::move(coo));
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("B(x, y) -> M(~x)"),
                               cpu_machine(4));
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.partition.vals_part.subset(c).volume(), 2);
  }
}

TEST(TdnMaterialize, ReplicatedSparse) {
  auto st = skewed_csr(8);
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("B(x, y) -> M(z)"),
                               cpu_machine(2));
  EXPECT_TRUE(m.replicated);
}

TEST(TdnMaterialize, DenseMatrixColumnPartition) {
  Coo coo;
  coo.dims = {6, 8};
  auto st = fmt::pack("C", fmt::dense_matrix(), {6, 8}, std::move(coo));
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("C(x, y) -> M(y)"),
                               cpu_machine(4));
  ASSERT_FALSE(m.replicated);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.partition.vals_part.subset(c).volume(), 6 * 2);
  }
  EXPECT_TRUE(m.partition.vals_part.disjoint());
  EXPECT_TRUE(m.partition.vals_part.complete());
}

// 2-D machine-tuple placement strings keep working on a rank-1 grid: every
// machine variable names the single axis, so "C(x, y) -> M(z, y)" is a
// column partition across all processors (legacy behavior).
TEST(TdnMaterialize, TwoDimTupleOnRankOneGrid) {
  Coo coo;
  coo.dims = {6, 8};
  auto st = fmt::pack("C", fmt::dense_matrix(), {6, 8}, std::move(coo));
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("C(x, y) -> M(z, y)"),
                               cpu_machine(4));
  ASSERT_FALSE(m.replicated);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.partition.vals_part.subset(c).volume(), 6 * 2);
  }
}

// Figure 4c: a dense matrix tiled on both axes of a Grid(x, y) machine.
TEST(TdnMaterialize, DenseGridTiles) {
  Coo coo;
  coo.dims = {6, 8};
  auto st = fmt::pack("A", fmt::dense_matrix(), {6, 8}, std::move(coo));
  rt::MachineConfig cfg;
  cfg.nodes = 4;
  rt::Machine machine(cfg, rt::Grid(2, 2), rt::ProcKind::CPU);
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("A(x, y) -> M(x, y)"),
                               machine);
  ASSERT_FALSE(m.replicated);
  ASSERT_EQ(m.partition.vals_part.num_colors(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.partition.vals_part.subset(c).volume(), 3 * 4);
  }
  EXPECT_TRUE(m.partition.vals_part.disjoint());
  EXPECT_TRUE(m.partition.vals_part.complete());
  // Sparse row blocks on the same machine replicate across the column axis:
  // colors (x, 0) and (x, 1) hold the same rows.
  auto bst = skewed_csr(8);
  Materialized mb = materialize(trace, bst, parse_tdn("B(x, y) -> M(x, z)"),
                                machine);
  ASSERT_EQ(mb.partition.level_parts[0].num_colors(), 4);
  EXPECT_EQ(mb.partition.level_parts[0].subset(0).str(),
            mb.partition.level_parts[0].subset(1).str());
  EXPECT_EQ(mb.partition.level_parts[0].subset(2).str(),
            mb.partition.level_parts[0].subset(3).str());
}

TEST(TdnMaterialize, RejectsNonZeroOnDense) {
  Coo coo;
  coo.dims = {6, 8};
  auto st = fmt::pack("C", fmt::dense_matrix(), {6, 8}, std::move(coo));
  comp::PlanTrace trace;
  EXPECT_THROW(
      materialize(trace, st, parse_tdn("C(x, y) -> M(~x)"), cpu_machine(2)),
      NotationError);
}

TEST(TdnMaterialize, RejectsWrongArity) {
  auto st = skewed_csr(8);
  comp::PlanTrace trace;
  EXPECT_THROW(
      materialize(trace, st, parse_tdn("B(x) -> M(x)"), cpu_machine(2)),
      NotationError);
}

// distribute_tensor installs placements such that reading each color's vals
// subset on its assigned node costs no communication.
TEST(TdnDistribute, PlacementMatchesPartition) {
  auto machine = cpu_machine(4);
  rt::Runtime runtime(machine);
  auto st = skewed_csr(16);
  comp::PlanTrace trace;
  Materialized m = materialize(trace, st, parse_tdn("B(x, y) -> M(x)"),
                               machine);
  distribute_tensor(trace, runtime, st, parse_tdn("B(x, y) -> M(x)"),
                    machine);
  runtime.reset_timing();
  // A launch that reads each color's vals on its own node moves nothing.
  rt::IndexLaunch launch;
  launch.name = "read_local";
  launch.domain = 4;
  launch.reqs = {
      rt::RegionReq{st.vals(), &m.partition.vals_part, rt::Privilege::RO}};
  launch.body = [](const rt::TaskContext&) { return rt::WorkEstimate{1, 1}; };
  runtime.execute(launch);
  EXPECT_DOUBLE_EQ(runtime.report().inter_node_bytes, 0.0);
}

TEST(TdnDistribute, ReplicationPlacesEverywhere) {
  auto machine = cpu_machine(3);
  rt::Runtime runtime(machine);
  auto st = skewed_csr(9);
  comp::PlanTrace trace;
  distribute_tensor(trace, runtime, st, parse_tdn("B(x, y) -> M(q)"),
                    machine);
  runtime.reset_timing();
  rt::IndexLaunch launch;
  launch.name = "read_all";
  launch.domain = 3;
  launch.reqs = {rt::RegionReq{st.vals(), nullptr, rt::Privilege::RO}};
  launch.body = [](const rt::TaskContext&) { return rt::WorkEstimate{1, 1}; };
  runtime.execute(launch);
  EXPECT_DOUBLE_EQ(runtime.report().inter_node_bytes, 0.0);
}

TEST(EqualBounds, SplitsLikePartitionEqual) {
  auto b = equal_bounds(10, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].size() + b[1].size() + b[2].size(), 10);
  EXPECT_EQ(b[0].lo, 0);
  EXPECT_EQ(b[2].hi, 9);
}

}  // namespace
}  // namespace spdistal::tdn
