// End-to-end compiler tests: lowering (Figure 9a), generated plan structure
// (Figure 9b), execution on the simulated machine, and the key property
// that results are independent of the distribution (node count, universe vs
// non-zero partitioning, CPU vs GPU machines).
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "tensor/dense_ref.h"

namespace spdistal::comp {
namespace {

using rt::Coord;

rt::Machine cpu_machine(int nodes) {
  rt::MachineConfig cfg;
  cfg.nodes = nodes;
  return rt::Machine(cfg, rt::Grid(nodes), rt::ProcKind::CPU);
}

rt::Machine gpu_machine(int nodes, int gpus) {
  rt::MachineConfig cfg;
  cfg.nodes = nodes;
  return rt::Machine(cfg, rt::Grid(gpus), rt::ProcKind::GPU);
}

// The complete Figure 1 program: distributed CPU SpMV.
struct SpmvProgram {
  IndexVar i{"i"}, j{"j"}, io{"io"}, ii{"ii"};
  Tensor a, B, c;
  Statement* stmt;

  SpmvProgram(int pieces, fmt::Coo coo) {
    const Coord n = coo.dims[0];
    const Coord m = coo.dims[1];
    a = Tensor("a", {n}, fmt::dense_vector(),
               tdn::parse_tdn("a(x) -> M(x)"));
    B = Tensor("B", {n, m}, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
    c = Tensor("c", {m}, fmt::dense_vector(),
               tdn::parse_tdn("c(x) -> M(y)"));
    B.from_coo(std::move(coo));
    c.init_dense([](const auto& x) {
      return 1.0 + 0.5 * static_cast<double>(x[0] % 3);
    });
    stmt = &(a(i) = B(i, j) * c(j));
    a.schedule()
        .divide(i, io, ii, pieces)
        .distribute(io)
        .communicate({"a", "B", "c"}, io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
  }
};

TEST(Compile, Figure1SpmvAnalysis) {
  SpmvProgram prog(4, data::uniform_matrix(64, 64, 400, 1));
  rt::Machine m = cpu_machine(4);
  CompiledKernel ck = CompiledKernel::compile(*prog.stmt, m);
  EXPECT_EQ(ck.pieces(), 4);
  EXPECT_FALSE(ck.position_space());
  EXPECT_EQ(ck.dist_source_var(), prog.i);
  EXPECT_EQ(ck.leaf_kernel_name(), "spmv_row");
  EXPECT_EQ(ck.leaf_threads(), m.config().cores_per_node);
}

TEST(Compile, RequiresDistribute) {
  SpmvProgram prog(4, data::uniform_matrix(32, 32, 100, 2));
  sched::Schedule empty;
  EXPECT_THROW(CompiledKernel::compile(*prog.stmt, empty, cpu_machine(2)),
               ScheduleError);
}

TEST(Execute, SpmvMatchesReferenceAndTraceMatchesFigure9b) {
  SpmvProgram prog(4, data::powerlaw_matrix(96, 96, 600, 1.1, 3));
  rt::Machine m = cpu_machine(4);
  rt::Runtime runtime(m);
  CompiledKernel ck = CompiledKernel::compile(*prog.stmt, m);
  auto inst = ck.instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(prog.a, ref::eval(*prog.stmt)), 1e-12);

  // The generated plan has the Figure 9b structure for B: a universe
  // coloring, partitionByBounds of the row space, an image for crd, copies
  // for pos/vals, then a distributed loop and the leaf kernel.
  const PlanTrace& trace = inst->trace();
  EXPECT_GE(trace.count(PlanOpKind::MakeUniverseColoring), 1);
  EXPECT_GE(trace.count(PlanOpKind::PartitionByBounds), 1);
  EXPECT_GE(trace.count(PlanOpKind::Image), 1);
  EXPECT_EQ(trace.count(PlanOpKind::DistributedFor), 1);
  EXPECT_GE(trace.count(PlanOpKind::LeafKernel), 1);
  EXPECT_EQ(trace.count(PlanOpKind::Preimage), 0);
}

TEST(Execute, NonZeroSpmvUsesPreimage) {
  // Figure 1's computation with the non-zero based schedule of §II-D.
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi");
  fmt::Coo coo = data::powerlaw_matrix(96, 96, 600, 1.3, 4);
  Tensor a("a", {96}, fmt::dense_vector());
  Tensor B("B", {96, 96}, fmt::csr(),
           tdn::parse_tdn("B(x, y) fuse(x, y -> g) -> M(~g)"));
  Tensor c("c", {96}, fmt::dense_vector(), tdn::parse_tdn("c(x) -> M(y)"));
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) { return 1.0 + static_cast<double>(x[0] % 2); });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, 4, "B").distribute(fo);

  rt::Machine m = cpu_machine(4);
  rt::Runtime runtime(m);
  CompiledKernel ck = CompiledKernel::compile(stmt, m);
  EXPECT_TRUE(ck.position_space());
  EXPECT_EQ(ck.split_tensor(), "B");
  EXPECT_EQ(ck.split_level(), 1);
  EXPECT_EQ(ck.leaf_kernel_name(), "spmv_nz");
  auto inst = ck.instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
  // Figure 9d: the non-zero plan derives the row partition via preimage.
  EXPECT_GE(inst->trace().count(PlanOpKind::MakeNonZeroColoring), 1);
  EXPECT_GE(inst->trace().count(PlanOpKind::Preimage), 1);
}

TEST(Execute, SpAdd3RejectsPositionSpace) {
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi");
  fmt::Coo coo = data::uniform_matrix(32, 32, 120, 5);
  Tensor A("A", {32, 32}, fmt::csr());
  Tensor B("B", {32, 32}, fmt::csr());
  Tensor C("C", {32, 32}, fmt::csr());
  Tensor D("D", {32, 32}, fmt::csr());
  B.from_coo(coo);
  C.from_coo(data::shift_last_dim(coo, 1));
  D.from_coo(data::shift_last_dim(coo, 2));
  Statement& stmt = (A(i, j) = B(i, j) + C(i, j) + D(i, j));
  A.schedule().fuse(i, j, f).divide_pos(f, fo, fi, 4, "B").distribute(fo);
  EXPECT_THROW(CompiledKernel::compile(stmt, cpu_machine(4)), ScheduleError);
}

// The core distribution-independence property, run over every paper kernel:
// the computed values are identical (up to FP tolerance) across 1/2/4/8
// nodes, and between CPU and GPU machines.
struct KernelCase {
  std::string name;
  // Builds the statement + schedule for `pieces`; returns the output tensor
  // and statement.
  std::function<std::pair<Tensor, Statement*>(int pieces)> build;
};

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  cases.push_back({"spmv", [](int pieces) {
    auto* p = new SpmvProgram(pieces, data::powerlaw_matrix(80, 80, 500, 1.2, 7));
    return std::make_pair(p->a, p->stmt);
  }});
  cases.push_back({"spmm", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), io("io"), ii("ii");
    fmt::Coo coo = data::uniform_matrix(48, 40, 300, 8);
    Tensor A("A", {48, 8}, fmt::dense_matrix(), tdn::parse_tdn("A(x, y) -> M(x)"));
    Tensor B("B", {48, 40}, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
    Tensor C("C", {40, 8}, fmt::dense_matrix(), tdn::parse_tdn("C(x, y) -> M(z)"));
    B.from_coo(std::move(coo));
    C.init_dense([](const auto& x) {
      return 0.25 * static_cast<double>((x[0] + x[1]) % 7);
    });
    Statement* stmt = &(A(i, j) = B(i, k) * C(k, j));
    A.schedule().divide(i, io, ii, pieces).distribute(io)
        .communicate({"A", "B", "C"}, io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"spadd3", [](int pieces) {
    IndexVar i("i"), j("j"), io("io"), ii("ii");
    fmt::Coo coo = data::powerlaw_matrix(64, 64, 400, 1.1, 9);
    Tensor A("A", {64, 64}, fmt::csr(), tdn::parse_tdn("A(x, y) -> M(x)"));
    Tensor B("B", {64, 64}, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
    Tensor C("C", {64, 64}, fmt::csr(), tdn::parse_tdn("C(x, y) -> M(x)"));
    Tensor D("D", {64, 64}, fmt::csr(), tdn::parse_tdn("D(x, y) -> M(x)"));
    B.from_coo(coo);
    C.from_coo(data::shift_last_dim(coo, 3));
    D.from_coo(data::shift_last_dim(coo, 7));
    Statement* stmt = &(A(i, j) = B(i, j) + C(i, j) + D(i, j));
    A.schedule().divide(i, io, ii, pieces).distribute(io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"sddmm_nz", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), f("f"), fo("fo"), fi("fi");
    fmt::Coo coo = data::powerlaw_matrix(56, 56, 350, 1.2, 10);
    Tensor A("A", {56, 56}, fmt::csr());
    Tensor B("B", {56, 56}, fmt::csr(),
             tdn::parse_tdn("B(x, y) fuse(x, y -> g) -> M(~g)"));
    Tensor C("C", {56, 6}, fmt::dense_matrix(), tdn::parse_tdn("C(x, y) -> M(z)"));
    Tensor D("D", {6, 56}, fmt::dense_matrix(), tdn::parse_tdn("D(x, y) -> M(z)"));
    B.from_coo(std::move(coo));
    C.init_dense([](const auto& x) {
      return 1.0 + 0.5 * static_cast<double>(x[1] % 3);
    });
    D.init_dense([](const auto& x) {
      return 0.5 + 0.25 * static_cast<double>(x[0] % 2);
    });
    Statement* stmt = &(A(i, j) = B(i, j) * C(i, k) * D(k, j));
    A.schedule().fuse(i, j, f).divide_pos(f, fo, fi, pieces, "B")
        .distribute(fo);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"spttv", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), io("io"), ii("ii");
    fmt::Coo coo = data::uniform_3tensor(24, 18, 20, 350, 11);
    Tensor A("A", {24, 18}, fmt::csr(), tdn::parse_tdn("A(x, y) -> M(x)"));
    Tensor B("B", {24, 18, 20}, fmt::csf3(),
             tdn::parse_tdn("B(x, y, z) -> M(x)"));
    Tensor c("c", {20}, fmt::dense_vector(), tdn::parse_tdn("c(x) -> M(q)"));
    B.from_coo(std::move(coo));
    c.init_dense([](const auto& x) {
      return 1.0 + 0.2 * static_cast<double>(x[0] % 4);
    });
    Statement* stmt = &(A(i, j) = B(i, j, k) * c(k));
    A.schedule().divide(i, io, ii, pieces).distribute(io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"spmttkrp", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), l("l"), io("io"), ii("ii");
    fmt::Coo coo = data::powerlaw_3tensor(30, 16, 12, 300, 1.1, 12);
    Tensor A("A", {30, 5}, fmt::dense_matrix(), tdn::parse_tdn("A(x, y) -> M(x)"));
    Tensor B("B", {30, 16, 12}, fmt::csf3(), tdn::parse_tdn("B(x, y, z) -> M(x)"));
    Tensor C("C", {16, 5}, fmt::dense_matrix(), tdn::parse_tdn("C(x, y) -> M(z)"));
    Tensor D("D", {12, 5}, fmt::dense_matrix(), tdn::parse_tdn("D(x, y) -> M(z)"));
    B.from_coo(std::move(coo));
    C.init_dense([](const auto& x) {
      return 0.5 + 0.1 * static_cast<double>((x[0] * 2 + x[1]) % 5);
    });
    D.init_dense([](const auto& x) {
      return 1.0 - 0.1 * static_cast<double>((x[0] + 3 * x[1]) % 4);
    });
    Statement* stmt = &(A(i, l) = B(i, j, k) * C(j, l) * D(k, l));
    A.schedule().divide(i, io, ii, pieces).distribute(io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"spttv_nz", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), f("f"), g("g"), fo("fo"), fi("fi");
    fmt::Coo coo = data::powerlaw_3tensor(26, 14, 18, 320, 1.2, 15);
    Tensor A("A", {26, 14}, fmt::csr());
    Tensor B("B", {26, 14, 18}, fmt::csf3());
    Tensor c("c", {18}, fmt::dense_vector(), tdn::parse_tdn("c(x) -> M(q)"));
    B.from_coo(std::move(coo));
    c.init_dense([](const auto& x) {
      return 1.0 + 0.1 * static_cast<double>(x[0] % 3);
    });
    Statement* stmt = &(A(i, j) = B(i, j, k) * c(k));
    A.schedule().fuse(i, j, f).fuse(f, k, g)
        .divide_pos(g, fo, fi, pieces, "B").distribute(fo);
    return std::make_pair(A, stmt);
  }});
  cases.push_back({"spmttkrp_nz", [](int pieces) {
    IndexVar i("i"), j("j"), k("k"), l("l"), f("f"), g("g"), fo("fo"), fi("fi");
    fmt::Coo coo = data::powerlaw_3tensor(22, 12, 16, 280, 1.2, 16);
    Tensor A("A", {22, 4}, fmt::dense_matrix());
    Tensor B("B", {22, 12, 16}, fmt::csf3());
    Tensor C("C", {12, 4}, fmt::dense_matrix(), tdn::parse_tdn("C(x, y) -> M(q)"));
    Tensor D("D", {16, 4}, fmt::dense_matrix(), tdn::parse_tdn("D(x, y) -> M(q)"));
    B.from_coo(std::move(coo));
    C.init_dense([](const auto& x) {
      return 0.5 + 0.2 * static_cast<double>((x[0] + x[1]) % 3);
    });
    D.init_dense([](const auto& x) {
      return 1.0 - 0.25 * static_cast<double>((2 * x[0] + x[1]) % 2);
    });
    Statement* stmt = &(A(i, l) = B(i, j, k) * C(j, l) * D(k, l));
    A.schedule().fuse(i, j, f).fuse(f, k, g)
        .divide_pos(g, fo, fi, pieces, "B").distribute(fo);
    return std::make_pair(A, stmt);
  }});
  return cases;
}

class DistributionIndependence : public ::testing::TestWithParam<int> {};

TEST_P(DistributionIndependence, SameResultOnAnyNodeCount) {
  const KernelCase kc = kernel_cases()[static_cast<size_t>(GetParam())];
  // Reference: 1 node.
  auto [out1, stmt1] = kc.build(1);
  {
    rt::Machine m = cpu_machine(1);
    rt::Runtime runtime(m);
    auto inst = CompiledKernel::compile(*stmt1, m).instantiate(runtime);
    inst->run(1);
  }
  const ref::DenseTensor oracle = ref::eval(*stmt1);
  EXPECT_LE(ref::max_abs_diff(out1, oracle), 1e-10) << kc.name << " @1";

  for (int nodes : {2, 4, 8}) {
    auto [out, stmt] = kc.build(nodes);
    rt::Machine m = cpu_machine(nodes);
    rt::Runtime runtime(m);
    auto inst = CompiledKernel::compile(*stmt, m).instantiate(runtime);
    inst->run(2);  // two iterations: steady state must stay correct
    EXPECT_LE(ref::max_abs_diff(out, ref::eval(*stmt)), 1e-10)
        << kc.name << " @" << nodes;
  }
}

TEST_P(DistributionIndependence, SameResultOnGpuMachine) {
  const KernelCase kc = kernel_cases()[static_cast<size_t>(GetParam())];
  auto [out, stmt] = kc.build(8);
  rt::Machine m = gpu_machine(2, 8);
  rt::Runtime runtime(m);
  auto inst = CompiledKernel::compile(*stmt, m).instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(out, ref::eval(*stmt)), 1e-10) << kc.name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, DistributionIndependence,
                         ::testing::Range(0, 8));

// Scaling sanity: more nodes => lower simulated time for a compute-heavy
// kernel; non-zero distribution beats universe distribution on skewed data.
TEST(Simulation, StrongScalingAndLoadBalance) {
  auto time_with = [&](int nodes, bool nonzero) {
    IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi"), io("io"), ii("ii");
    // Heavily skewed matrix (a few giant rows), large enough that leaf work
    // dominates task-launch overhead.
    fmt::Coo coo = data::powerlaw_matrix(3000, 3000, 200000, 1.5, 13);
    const Coord n = coo.dims[0];
    Tensor a("a", {n}, fmt::dense_vector());
    Tensor B("B", {n, n}, fmt::csr(),
             nonzero ? tdn::parse_tdn("B(x, y) fuse(x, y -> g) -> M(~g)")
                     : tdn::parse_tdn("B(x, y) -> M(x)"));
    Tensor c("c", {n}, fmt::dense_vector(), tdn::parse_tdn("c(x) -> M(z)"));
    B.from_coo(std::move(coo));
    c.init_dense([](const auto&) { return 1.0; });
    Statement& stmt = (a(i) = B(i, j) * c(j));
    if (nonzero) {
      a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, nodes, "B")
          .distribute(fo);
    } else {
      a.schedule().divide(i, io, ii, nodes).distribute(io);
    }
    (void)n;
    // Paper-scale timing: throughputs slowed by the dataset scale factor so
    // compute dominates task overhead exactly as it does at full size.
    rt::MachineConfig cfg = data::paper_machine_config(nodes);
    rt::Machine m(cfg, rt::Grid(nodes), rt::ProcKind::CPU);
    rt::Runtime runtime(m);
    auto inst = CompiledKernel::compile(stmt, m).instantiate(runtime);
    inst->run(1);            // warm-up: placement + first-touch communication
    runtime.reset_timing();
    inst->run(10);           // steady state
    return inst->report().sim_time / 10;
  };
  const double t1 = time_with(1, false);
  const double t8 = time_with(8, false);
  EXPECT_LT(t8, t1);  // strong scaling
  const double t8nz = time_with(8, true);
  // Non-zero distribution is better load balanced on skewed data. (It pays
  // reduction communication, so allow a margin rather than strict order.)
  EXPECT_LT(t8nz, t8 * 1.1);
}

// --- Multi-dimensional distribution onto Machine(Grid(x, y)) -----------------

// The paper's 2-D SpMM schedule (§II-C): divide both output variables and
// distribute each onto one grid axis.
struct Grid2SpmmProgram {
  IndexVar i{"i"}, j{"j"}, k{"k"}, io{"io"}, ii{"ii"}, jo{"jo"}, ji{"ji"};
  Tensor A, B, C;
  Statement* stmt;

  Grid2SpmmProgram(int px, int py, fmt::Coo coo, Coord jdim = 16) {
    const Coord n = coo.dims[0];
    const Coord m = coo.dims[1];
    // Figure 4c-style placements on Machine(Grid(x, y)): A tiled on both
    // axes, B row-blocked (replicated across y), C column-blocked
    // (replicated across x).
    A = Tensor("A", {n, jdim}, fmt::dense_matrix(),
               tdn::parse_tdn("A(x, y) -> M(x, y)"));
    B = Tensor("B", {n, m}, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x, z)"));
    C = Tensor("C", {m, jdim}, fmt::dense_matrix(),
               tdn::parse_tdn("C(x, y) -> M(z, y)"));
    B.from_coo(std::move(coo));
    C.init_dense([](const auto& x) {
      return 0.25 * static_cast<double>((x[0] + 2 * x[1]) % 9);
    });
    stmt = &(A(i, j) = B(i, k) * C(k, j));
    A.schedule()
        .divide(i, io, ii, px)
        .divide(j, jo, ji, py)
        .distribute(io)
        .distribute(jo)
        .communicate({"A", "B", "C"}, io)
        .parallelize(ii, sched::ParallelUnit::CPUThread);
  }
};

TEST(CompileGrid, Spmm2dAnalysis) {
  Grid2SpmmProgram prog(2, 2, data::uniform_matrix(64, 64, 400, 21));
  rt::MachineConfig cfg;
  cfg.nodes = 4;
  rt::Machine m(cfg, rt::Grid(2, 2), rt::ProcKind::CPU);
  CompiledKernel ck = CompiledKernel::compile(*prog.stmt, m);
  EXPECT_EQ(ck.pieces(), 4);
  EXPECT_EQ(ck.grid_pieces(), (std::vector<int>{2, 2}));
  ASSERT_EQ(ck.dist_source_vars().size(), 2u);
  EXPECT_EQ(ck.dist_source_vars()[0], prog.i);
  EXPECT_EQ(ck.dist_source_vars()[1], prog.j);
  EXPECT_FALSE(ck.position_space());
  // spmm_row clamps its dense j loop to the axis-1 tile.
  EXPECT_EQ(ck.leaf_kernel_name(), "spmm_row");
}

TEST(ExecuteGrid, Spmm2dMatchesOracle) {
  for (auto [px, py] : {std::pair<int, int>{2, 2}, {4, 2}, {2, 4}}) {
    Grid2SpmmProgram prog(px, py,
                          data::powerlaw_matrix(96, 96, 800, 1.2, 22));
    rt::MachineConfig cfg;
    cfg.nodes = px * py;
    rt::Machine m(cfg, rt::Grid(px, py), rt::ProcKind::CPU);
    rt::Runtime runtime(m);
    auto inst = CompiledKernel::compile(*prog.stmt, m).instantiate(runtime);
    inst->run(2);  // steady state must stay correct
    EXPECT_LE(ref::max_abs_diff(prog.A, ref::eval(*prog.stmt)), 1e-10)
        << px << "x" << py;
    EXPECT_EQ(inst->trace().count(PlanOpKind::DistributedFor), 1);
  }
}

TEST(ExecuteGrid, Spmm2dOnGpuMachineMatchesOracle) {
  Grid2SpmmProgram prog(2, 4, data::powerlaw_matrix(80, 80, 600, 1.3, 23));
  rt::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.gpus_per_node = 4;
  rt::Machine m(cfg, rt::Grid(2, 4), rt::ProcKind::GPU);
  rt::Runtime runtime(m);
  auto inst = CompiledKernel::compile(*prog.stmt, m).instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(prog.A, ref::eval(*prog.stmt)), 1e-10);
}

// 2-D SpMV distributes the reduction variable j on axis 1: the output is
// merged across the column axis (reduction privileges), the co-iteration
// engine clamps j per piece.
TEST(ExecuteGrid, Spmv2dReductionAxisMatchesOracle) {
  IndexVar i("i"), j("j"), io("io"), ii("ii"), jo("jo"), ji("ji");
  fmt::Coo coo = data::powerlaw_matrix(72, 72, 500, 1.2, 24);
  Tensor a("a", {72}, fmt::dense_vector());
  Tensor B("B", {72, 72}, fmt::csr());
  Tensor c("c", {72}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.5 * static_cast<double>(x[0] % 3);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule()
      .divide(i, io, ii, 2)
      .divide(j, jo, ji, 2)
      .distribute(io)
      .distribute(jo);
  rt::MachineConfig cfg;
  cfg.nodes = 4;
  rt::Machine m(cfg, rt::Grid(2, 2), rt::ProcKind::CPU);
  CompiledKernel ck = CompiledKernel::compile(stmt, m);
  EXPECT_EQ(ck.leaf_kernel_name(), "coiter");  // spmv_row cannot clamp j
  rt::Runtime runtime(m);
  auto inst = ck.instantiate(runtime);
  inst->run(2);
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-10);
}

TEST(ExecuteGrid, Sddmm2dMatchesOracle) {
  IndexVar i("i"), j("j"), k("k"), io("io"), ii("ii"), jo("jo"), ji("ji");
  fmt::Coo coo = data::powerlaw_matrix(56, 56, 350, 1.2, 25);
  Tensor A("A", {56, 56}, fmt::csr());
  Tensor B("B", {56, 56}, fmt::csr());
  Tensor C("C", {56, 6}, fmt::dense_matrix());
  Tensor D("D", {6, 56}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 1.0 + 0.5 * static_cast<double>(x[1] % 3);
  });
  D.init_dense([](const auto& x) {
    return 0.5 + 0.25 * static_cast<double>(x[0] % 2);
  });
  Statement& stmt = (A(i, j) = B(i, j) * C(i, k) * D(k, j));
  A.schedule()
      .divide(i, io, ii, 2)
      .divide(j, jo, ji, 2)
      .distribute(io)
      .distribute(jo);
  rt::MachineConfig cfg;
  cfg.nodes = 4;
  rt::Machine m(cfg, rt::Grid(2, 2), rt::ProcKind::CPU);
  CompiledKernel ck = CompiledKernel::compile(stmt, m);
  EXPECT_EQ(ck.leaf_kernel_name(), "sddmm_row");
  rt::Runtime runtime(m);
  auto inst = ck.instantiate(runtime);
  inst->run(2);
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10);
}

// Cross-product of a non-zero split (axis 0) and a universe split (axis 1):
// equal non-zero blocks of B x column blocks of the dense output.
TEST(ExecuteGrid, SpmmNonZeroTimesUniverseGridMatchesOracle) {
  IndexVar i("i"), j("j"), k("k"), f("f"), fo("fo"), fi("fi"), jo("jo"),
      ji("ji");
  fmt::Coo coo = data::powerlaw_matrix(64, 64, 500, 1.4, 28);
  Tensor A("A", {64, 12}, fmt::dense_matrix());
  Tensor B("B", {64, 64}, fmt::csr());
  Tensor C("C", {64, 12}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.1 * static_cast<double>((x[0] + x[1]) % 5);
  });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
  A.schedule()
      .fuse(i, k, f)
      .divide_pos(f, fo, fi, 2, "B")
      .divide(j, jo, ji, 2)
      .distribute(fo)
      .distribute(jo);
  rt::MachineConfig cfg;
  cfg.nodes = 4;
  rt::Machine m(cfg, rt::Grid(2, 2), rt::ProcKind::CPU);
  CompiledKernel ck = CompiledKernel::compile(stmt, m);
  EXPECT_TRUE(ck.position_space());
  EXPECT_EQ(ck.pieces(), 4);
  EXPECT_EQ(ck.grid_pieces(), (std::vector<int>{2, 2}));
  EXPECT_EQ(ck.leaf_kernel_name(), "spmm_nz");  // clamps j per piece
  rt::Runtime runtime(m);
  auto inst = ck.instantiate(runtime);
  inst->run(2);
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10);
}

TEST(CompileGrid, RejectsFusedVariableOnInnerAxis) {
  IndexVar i("i"), j("j"), k("k"), f("f"), fo("fo"), fi("fi"), io("io"),
      ii("ii");
  fmt::Coo coo = data::uniform_matrix(32, 32, 100, 29);
  Tensor A("A", {32, 8}, fmt::dense_matrix());
  Tensor B("B", {32, 32}, fmt::csr());
  Tensor C("C", {32, 8}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
  // i is fused into the position split; it cannot also be an inner axis.
  A.schedule()
      .fuse(i, k, f)
      .divide_pos(f, fo, fi, 2, "B")
      .divide(i, io, ii, 2)
      .distribute(fo)
      .distribute(io);
  EXPECT_THROW(CompiledKernel::compile(stmt, cpu_machine(4)), ScheduleError);
}

TEST(CompileGrid, RejectsPositionSpaceOnInnerAxis) {
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi"), go("go"), gi("gi");
  fmt::Coo coo = data::uniform_matrix(32, 32, 100, 26);
  Tensor a("a", {32}, fmt::dense_vector());
  Tensor B("B", {32, 32}, fmt::csr());
  Tensor c("c", {32}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  // Only axis 0 may drive non-zero blocks; a second divide_pos axis is
  // rejected.
  a.schedule()
      .fuse(i, j, f)
      .divide_pos(f, fo, fi, 2, "B")
      .divide_pos(fi, go, gi, 2, "B")
      .distribute(fo)
      .distribute(go);
  EXPECT_THROW(CompiledKernel::compile(stmt, cpu_machine(4)), ScheduleError);
}

TEST(CompileGrid, RejectsSameVariableOnTwoAxes) {
  IndexVar i("i"), j("j"), io("io"), ii("ii"), io2("io2"), ii2("ii2");
  fmt::Coo coo = data::uniform_matrix(32, 32, 100, 27);
  Tensor a("a", {32}, fmt::dense_vector());
  Tensor B("B", {32, 32}, fmt::csr());
  Tensor c("c", {32}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule()
      .divide(i, io, ii, 2)
      .divide(i, io2, ii2, 2)
      .distribute(io)
      .distribute(io2);
  EXPECT_THROW(CompiledKernel::compile(stmt, cpu_machine(4)), ScheduleError);
}

// Mismatched data and compute distributions still compute correctly but
// move more data (paper §II-D, last paragraph).
TEST(Simulation, DistributionMismatchCostsCommunication) {
  auto run_with = [&](const std::string& tdn_b) {
    IndexVar i("i"), j("j"), io("io"), ii("ii");
    fmt::Coo coo = data::uniform_matrix(128, 128, 2000, 14);
    Tensor a("a", {128}, fmt::dense_vector(), tdn::parse_tdn("a(x) -> M(x)"));
    Tensor B("B", {128, 128}, fmt::csr(), tdn::parse_tdn(tdn_b));
    Tensor c("c", {128}, fmt::dense_vector(), tdn::parse_tdn("c(x) -> M(z)"));
    B.from_coo(std::move(coo));
    c.init_dense([](const auto&) { return 1.0; });
    Statement& stmt = (a(i) = B(i, j) * c(j));
    a.schedule().divide(i, io, ii, 4).distribute(io);
    rt::Machine m = cpu_machine(4);
    rt::Runtime runtime(m);
    auto inst = CompiledKernel::compile(stmt, m).instantiate(runtime);
    runtime.reset_timing();  // measure only compute-time communication
    inst->run(1);
    EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-10);
    return inst->report().inter_node_bytes;
  };
  const double matched = run_with("B(x, y) -> M(x)");
  const double mismatched = run_with("B(x, y) fuse(x, y -> g) -> M(~g)");
  EXPECT_GT(mismatched, matched);
}

}  // namespace
}  // namespace spdistal::comp
