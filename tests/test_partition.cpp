// Tests for direct and dependent partitioning, including the paper's worked
// examples: Figure 6 (image/preimage) and Figures 7-9 (the 4x4 CSR matrix).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "runtime/partition.h"
#include "runtime/region.h"

namespace spdistal::rt {
namespace {

// The paper's running example (Figure 7): the 4x4 matrix
//     cols:  0    1    2    3
//  row 0:  [ a    b    .    c ]
//  row 1:  [ .    d    .    e ]
//  row 2:  [ f    .    .    . ]
//  row 3:  [ g    .    .    h ]
// in SpDISTAL CSR: pos = {0,2},{3,4},{5,5},{6,7} (inclusive ranges),
// crd = 0 1 3 | 1 3 | 0 | 0 3.
struct PaperMatrix {
  RegionRef<PosRange> pos;
  RegionRef<int32_t> crd;
  IndexSpace vals_space{8};

  PaperMatrix() {
    pos = make_region<PosRange>(IndexSpace(4), "B.pos");
    crd = make_region<int32_t>(IndexSpace(8), "B.crd");
    (*pos)[0] = PosRange{0, 2};
    (*pos)[1] = PosRange{3, 4};
    (*pos)[2] = PosRange{5, 5};
    (*pos)[3] = PosRange{6, 7};
    const int32_t crds[8] = {0, 1, 3, 1, 3, 0, 0, 3};
    for (Coord i = 0; i < 8; ++i) (*crd)[i] = crds[i];
  }
};

TEST(PartitionEqual, BalancedBlocks) {
  IndexSpace s(10);
  Partition p = partition_equal(s, 3);
  ASSERT_EQ(p.num_colors(), 3);
  // 10 = 3 + 3 + 4 (trailing pieces absorb the remainder).
  EXPECT_EQ(p.subset(0).volume(), 3);
  EXPECT_EQ(p.subset(1).volume(), 3);
  EXPECT_EQ(p.subset(2).volume(), 4);
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

TEST(PartitionEqual, MorePiecesThanPoints) {
  IndexSpace s(2);
  Partition p = partition_equal(s, 4);
  ASSERT_EQ(p.num_colors(), 4);
  int64_t total = 0;
  for (int c = 0; c < 4; ++c) total += p.subset(c).volume();
  EXPECT_EQ(total, 2);
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

TEST(PartitionByBounds, ClipsToParent) {
  IndexSpace s(10);
  Partition p = partition_by_bounds(
      s, {RectN::make1(-5, 4), RectN::make1(5, 100)});
  EXPECT_EQ(p.subset(0).volume(), 5);
  EXPECT_EQ(p.subset(1).volume(), 5);
  EXPECT_TRUE(p.complete());
}

// Figure 6a: S contains index spaces {0..2},{3,4},{5},{6..8} over D(0..8);
// a partition of S into {0,1} and {2,3} images to D-subsets {0..4}, {5..8}.
TEST(DependentPartitioning, ImageMatchesFigure6a) {
  auto pos = make_region<PosRange>(IndexSpace(4), "S");
  (*pos)[0] = PosRange{0, 2};
  (*pos)[1] = PosRange{3, 4};
  (*pos)[2] = PosRange{5, 5};
  (*pos)[3] = PosRange{6, 8};
  IndexSpace d(9);
  Partition ps = partition_equal(pos->space(), 2);
  Partition img = image(*pos, ps, d);
  ASSERT_EQ(img.num_colors(), 2);
  EXPECT_EQ(img.subset(0).bounds(), RectN::make1(0, 4));
  EXPECT_EQ(img.subset(0).volume(), 5);
  EXPECT_EQ(img.subset(1).bounds(), RectN::make1(5, 8));
  EXPECT_EQ(img.subset(1).volume(), 4);
  EXPECT_TRUE(img.disjoint());
  EXPECT_TRUE(img.complete());
}

// Figure 6b: a partition of D can color a source entry with multiple colors
// when its range spans the boundary.
TEST(DependentPartitioning, PreimageCanOverlap) {
  auto pos = make_region<PosRange>(IndexSpace(4), "S");
  (*pos)[0] = PosRange{0, 2};
  (*pos)[1] = PosRange{3, 4};
  (*pos)[2] = PosRange{5, 5};
  (*pos)[3] = PosRange{4, 8};  // spans both halves of D
  IndexSpace d(9);
  Partition pd = partition_by_bounds(
      d, {RectN::make1(0, 4), RectN::make1(5, 8)});
  Partition pre = preimage(*pos, pd);
  ASSERT_EQ(pre.num_colors(), 2);
  // Entries 0,1 point into {0..4}; entry 3 spans; entry 2 points into {5}.
  EXPECT_TRUE(pre.subset(0).contains_point1(0));
  EXPECT_TRUE(pre.subset(0).contains_point1(1));
  EXPECT_TRUE(pre.subset(0).contains_point1(3));
  EXPECT_TRUE(pre.subset(1).contains_point1(2));
  EXPECT_TRUE(pre.subset(1).contains_point1(3));
  EXPECT_FALSE(pre.disjoint());  // entry 3 has two colors
  EXPECT_TRUE(pre.complete());
}

// Figure 9c: the row-based (universe) partition of the 4x4 paper matrix with
// 2 pieces. Rows {0,1} -> piece 0, rows {2,3} -> piece 1. The derived crd
// partition (image of pos) is {0..4} and {5..7}.
TEST(PaperExample, RowBasedUniversePartition) {
  PaperMatrix m;
  Partition rows = partition_equal(m.pos->space(), 2);
  Partition crd_part = image(*m.pos, rows, m.crd->space());
  ASSERT_EQ(crd_part.num_colors(), 2);
  EXPECT_EQ(crd_part.subset(0).bounds(), RectN::make1(0, 4));
  EXPECT_EQ(crd_part.subset(0).volume(), 5);
  EXPECT_EQ(crd_part.subset(1).bounds(), RectN::make1(5, 7));
  EXPECT_EQ(crd_part.subset(1).volume(), 3);
  EXPECT_TRUE(crd_part.disjoint());
  EXPECT_TRUE(crd_part.complete());
  // vals partition is a copy of the crd partition.
  Partition vals_part = copy_partition(crd_part, m.vals_space);
  EXPECT_EQ(vals_part.subset(0).volume(), 5);
  EXPECT_EQ(vals_part.subset(1).volume(), 3);
}

// Figure 9d: the non-zero partition of the paper matrix with 2 pieces: crd
// positions {0..3} and {4..7}. The derived pos partition (preimage) colors
// row 1 with both colors (its segment {3,4} spans the split).
TEST(PaperExample, NonZeroPartition) {
  PaperMatrix m;
  Partition crd_part = partition_equal(m.crd->space(), 2);
  Partition pos_part = preimage(*m.pos, crd_part);
  ASSERT_EQ(pos_part.num_colors(), 2);
  EXPECT_TRUE(pos_part.subset(0).contains_point1(0));
  EXPECT_TRUE(pos_part.subset(0).contains_point1(1));
  EXPECT_FALSE(pos_part.subset(0).contains_point1(2));
  EXPECT_TRUE(pos_part.subset(1).contains_point1(1));  // shared row
  EXPECT_TRUE(pos_part.subset(1).contains_point1(2));
  EXPECT_TRUE(pos_part.subset(1).contains_point1(3));
  EXPECT_FALSE(pos_part.disjoint());
  EXPECT_TRUE(pos_part.complete());
}

// Universe partition of a Compressed level: bucket crd entries by value
// ranges (Table I, finalizeUniversePartition for Compressed).
TEST(PartitionByValueRanges, BucketsByCoordinate) {
  PaperMatrix m;
  // Split the column universe 0..3 into {0..1} and {2..3}.
  Partition p = partition_by_value_ranges(*m.crd, {{0, 1}, {2, 3}});
  ASSERT_EQ(p.num_colors(), 2);
  // crd = 0 1 3 1 3 0 0 3: positions with value<=1: {0,1,3,5,6};
  // value>=2: {2,4,7}.
  EXPECT_EQ(p.subset(0).volume(), 5);
  EXPECT_EQ(p.subset(1).volume(), 3);
  EXPECT_TRUE(p.subset(1).contains_point1(2));
  EXPECT_TRUE(p.subset(1).contains_point1(4));
  EXPECT_TRUE(p.subset(1).contains_point1(7));
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

TEST(LiftToDim, RowPartitionOfMatrix) {
  IndexSpace matrix(RectN::make2(0, 9, 0, 19));
  Partition rows = partition_equal(IndexSpace(10), 2);
  Partition p = lift_to_dim(rows, matrix, 0);
  ASSERT_EQ(p.num_colors(), 2);
  EXPECT_EQ(p.subset(0).volume(), 5 * 20);
  EXPECT_EQ(p.subset(1).volume(), 5 * 20);
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

TEST(Grid2, TilesMatrix) {
  IndexSpace matrix(RectN::make2(0, 9, 0, 19));
  Partition p = partition_grid2(matrix, 2, 2);
  ASSERT_EQ(p.num_colors(), 4);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(p.subset(c).volume(), 50);
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

// Regression: pieces_x > row extent used to produce a default (1-D) empty
// rect that tripped the dimension assert in partition_by_bounds.
TEST(Grid2, MorePiecesThanRows) {
  IndexSpace matrix(RectN::make2(0, 1, 0, 9));  // 2 rows, 10 cols
  Partition p = partition_grid2(matrix, 4, 2);
  ASSERT_EQ(p.num_colors(), 8);
  int64_t total = 0;
  for (int c = 0; c < 8; ++c) total += p.subset(c).volume();
  EXPECT_EQ(total, 20);
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

// Regression: overlapping N-D rects double-counted volume, so a partition
// with a hole could report complete (vol >= parent volume despite row 3
// being uncovered).
TEST(PartitionComplete, OverlappingNDRectsDoNotMaskHoles) {
  IndexSpace s(RectN::make2(0, 3, 0, 3));  // 16 points
  IndexSubset holey(2);
  holey.add(RectN::make2(0, 1, 0, 3));  // rows 0-1: 8 points
  holey.add(RectN::make2(1, 2, 0, 3));  // rows 1-2: 8 points (4 overlap)
  Partition p(s, {holey});
  EXPECT_FALSE(p.complete());  // row 3 is a hole
  IndexSubset covered = holey;
  covered.add(RectN::make2(2, 3, 0, 3));
  Partition q(s, {covered});
  EXPECT_TRUE(q.complete());
}

// Overlapping value ranges may not be binary-searched: a value inside two
// ranges must land in both colors (the exhaustive fallback path).
TEST(PartitionByValueRanges, OverlappingRangesKeepMultiMembership) {
  PaperMatrix m;
  // crd = 0 1 3 1 3 0 0 3; ranges {0..2} and {1..3} share values 1 and 2.
  Partition p = partition_by_value_ranges(*m.crd, {{0, 2}, {1, 3}});
  ASSERT_EQ(p.num_colors(), 2);
  // Value-1 positions (1, 3) belong to both colors.
  EXPECT_TRUE(p.subset(0).contains_point1(1));
  EXPECT_TRUE(p.subset(1).contains_point1(1));
  EXPECT_TRUE(p.subset(0).contains_point1(3));
  EXPECT_TRUE(p.subset(1).contains_point1(3));
  EXPECT_FALSE(p.disjoint());
}

// Sorted-disjoint ranges with interleaved empties (equal_bounds output when
// pieces > extent) still bucket exactly like the exhaustive scan.
TEST(PartitionByValueRanges, EmptyRangesAndBinarySearchAgree) {
  PaperMatrix m;
  const std::vector<Rect1> ranges = {
      {0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 3}};  // two empty ranges inside
  Partition p = partition_by_value_ranges(*m.crd, ranges);
  ASSERT_EQ(p.num_colors(), 5);
  // crd = 0 1 3 1 3 0 0 3.
  EXPECT_EQ(p.subset(0).volume(), 3);  // value 0: positions 0, 5, 6
  EXPECT_EQ(p.subset(1).volume(), 0);
  EXPECT_EQ(p.subset(2).volume(), 2);  // value 1: positions 1, 3
  EXPECT_EQ(p.subset(3).volume(), 0);
  EXPECT_EQ(p.subset(4).volume(), 3);  // values 2-3: positions 2, 4, 7
  EXPECT_TRUE(p.disjoint());
  EXPECT_TRUE(p.complete());
}

// Property test over random CSR-like structures: universe and non-zero
// partitions always cover all stored coordinates, image/preimage round-trips
// keep every non-zero reachable, and non-zero partitions are balanced.
class RandomCsrPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomCsrPartitionProperty, CoverageAndBalance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 7);
  const int rows = 1 + static_cast<int>(rng.next_below(60));
  const int cols = 1 + static_cast<int>(rng.next_below(60));
  // Random CSR.
  std::vector<std::vector<int32_t>> row_cols(static_cast<size_t>(rows));
  int64_t nnz = 0;
  for (auto& rc : row_cols) {
    const int k = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < k; ++i) {
      rc.push_back(static_cast<int32_t>(rng.next_below(
          static_cast<uint64_t>(cols))));
    }
    std::sort(rc.begin(), rc.end());
    rc.erase(std::unique(rc.begin(), rc.end()), rc.end());
    nnz += static_cast<int64_t>(rc.size());
  }
  if (nnz == 0) return;  // nothing to partition
  auto pos = make_region<PosRange>(IndexSpace(rows), "pos");
  auto crd = make_region<int32_t>(IndexSpace(nnz), "crd");
  Coord at = 0;
  for (int r = 0; r < rows; ++r) {
    (*pos)[r] = PosRange{at, at + static_cast<Coord>(row_cols[r].size()) - 1};
    for (int32_t c : row_cols[static_cast<size_t>(r)]) (*crd)[at++] = c;
  }

  const int pieces = 1 + static_cast<int>(rng.next_below(6));

  // Universe (row-based): rows equally, crd derived via image.
  Partition prow = partition_equal(pos->space(), pieces);
  Partition pcrd = image(*pos, prow, crd->space());
  EXPECT_TRUE(pcrd.complete());
  EXPECT_TRUE(pcrd.disjoint());

  // Non-zero: crd equally, pos derived via preimage.
  Partition pnz = partition_equal(crd->space(), pieces);
  Partition ppos = preimage(*pos, pnz);
  // Rows with empty segments are (correctly) uncolored, so completeness of
  // the pos partition is not expected in general.
  // Every row with a non-empty segment must appear in some color.
  for (int r = 0; r < rows; ++r) {
    if (!(*pos)[r].empty()) {
      bool found = false;
      for (int c = 0; c < pieces; ++c) {
        if (ppos.subset(c).contains_point1(r)) found = true;
      }
      EXPECT_TRUE(found) << "row " << r << " lost by preimage";
    }
  }
  // Non-zero partition balance: max piece <= ceil(nnz/pieces).
  const int64_t cap = (nnz + pieces - 1) / pieces;
  for (int c = 0; c < pieces; ++c) {
    EXPECT_LE(pnz.subset(c).volume(), cap);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCsr, RandomCsrPartitionProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace spdistal::rt
