// Specialized leaf kernels vs. the dense reference oracle and the general
// co-iteration engine, on realistic synthetic structures.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "kernels/assembly.h"
#include "kernels/leaf_kernels.h"
#include "tensor/dense_ref.h"

namespace spdistal::kern {
namespace {

using rt::Coord;

struct MatrixCase {
  const char* name;
  std::function<fmt::Coo()> make;
};

std::vector<MatrixCase> matrix_cases() {
  return {
      {"banded", [] { return data::banded_matrix(60, 5, 1); }},
      {"uniform", [] { return data::uniform_matrix(50, 40, 300, 2); }},
      {"powerlaw", [] { return data::powerlaw_matrix(64, 64, 400, 1.2, 3); }},
      {"regular", [] { return data::regular_matrix(80, 3, 4); }},
      {"empty_rows",
       [] {
         fmt::Coo coo;
         coo.dims = {10, 10};
         coo.push({0, 0}, 1.0);
         coo.push({9, 9}, 2.0);
         return coo;
       }},
      {"single", [] {
         fmt::Coo coo;
         coo.dims = {1, 1};
         coo.push({0, 0}, 3.0);
         return coo;
       }},
  };
}

class SpmvKernels : public ::testing::TestWithParam<int> {};

TEST_P(SpmvKernels, RowAndNzMatchReference) {
  const MatrixCase mc = matrix_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j");
  fmt::Coo coo = mc.make();
  const Coord n = coo.dims[0];
  const Coord m = coo.dims[1];
  Tensor a("a", {n}, fmt::dense_vector());
  Tensor B("B", {n, m}, fmt::csr());
  Tensor c("c", {m}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.25 * static_cast<double>(x[0] % 7);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  const ref::DenseTensor expect = ref::eval(stmt);

  {
    Leaf leaf = make_spmv_row(a, B, c);
    a.zero();
    // Run as two pieces to exercise the boundary.
    PieceBounds p1, p2;
    p1.dist_coords = rt::Rect1{0, n / 2};
    p2.dist_coords = rt::Rect1{n / 2 + 1, n - 1};
    leaf(p1);
    if (!p2.dist_coords->empty()) leaf(p2);
    EXPECT_LE(ref::max_abs_diff(a, expect), 1e-12) << mc.name << " row";
  }
  {
    Leaf leaf = make_spmv_nz(a, B, c);
    a.zero();
    const Coord nnz = B.storage().level(1).positions;
    PieceBounds p1, p2;
    p1.dist_pos = rt::Rect1{0, nnz / 3};
    p2.dist_pos = rt::Rect1{nnz / 3 + 1, nnz - 1};
    leaf(p1);
    if (!p2.dist_pos->empty()) leaf(p2);
    EXPECT_LE(ref::max_abs_diff(a, expect), 1e-12) << mc.name << " nz";
  }
}

INSTANTIATE_TEST_SUITE_P(Structures, SpmvKernels, ::testing::Range(0, 6));

class SpmmKernel : public ::testing::TestWithParam<int> {};

TEST_P(SpmmKernel, MatchesReference) {
  const MatrixCase mc = matrix_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j"), k("k");
  fmt::Coo coo = mc.make();
  const Coord n = coo.dims[0];
  const Coord m = coo.dims[1];
  const Coord jdim = 8;
  Tensor A("A", {n, jdim}, fmt::dense_matrix());
  Tensor B("B", {n, m}, fmt::csr());
  Tensor C("C", {m, jdim}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 0.5 + static_cast<double>((x[0] * 3 + x[1]) % 5);
  });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
  Leaf leaf = make_spmm_row(A, B, C);
  A.zero();
  leaf(PieceBounds{});
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(Structures, SpmmKernel, ::testing::Range(0, 6));

class SpAdd3Kernel : public ::testing::TestWithParam<int> {};

TEST_P(SpAdd3Kernel, FusedUnionMatchesReference) {
  const MatrixCase mc = matrix_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j");
  fmt::Coo coo = mc.make();
  const Coord n = coo.dims[0];
  const Coord m = coo.dims[1];
  Tensor A("A", {n, m}, fmt::csr());
  Tensor B("B", {n, m}, fmt::csr());
  Tensor C("C", {n, m}, fmt::csr());
  Tensor D("D", {n, m}, fmt::csr());
  B.from_coo(coo);
  C.from_coo(data::shift_last_dim(coo, 1 % m));
  D.from_coo(data::shift_last_dim(coo, 2 % m));
  Statement& stmt = (A(i, j) = B(i, j) + C(i, j) + D(i, j));
  assemble_output(stmt);
  Leaf leaf = make_spadd3_row(A, B, C, D);
  A.zero();
  leaf(PieceBounds{});
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-12) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(Structures, SpAdd3Kernel, ::testing::Range(0, 6));

class SddmmKernel : public ::testing::TestWithParam<int> {};

TEST_P(SddmmKernel, RowAndNzMatchReference) {
  const MatrixCase mc = matrix_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j"), k("k");
  fmt::Coo coo = mc.make();
  const Coord n = coo.dims[0];
  const Coord m = coo.dims[1];
  const Coord kdim = 6;
  Tensor A("A", {n, m}, fmt::csr());
  Tensor B("B", {n, m}, fmt::csr());
  Tensor C("C", {n, kdim}, fmt::dense_matrix());
  Tensor D("D", {kdim, m}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 1.0 + 0.1 * static_cast<double>((x[0] + x[1]) % 4);
  });
  D.init_dense([](const auto& x) {
    return 0.5 - 0.2 * static_cast<double>((x[0] * 2 + x[1]) % 3);
  });
  Statement& stmt = (A(i, j) = B(i, j) * C(i, k) * D(k, j));
  assemble_output(stmt);
  const ref::DenseTensor expect = ref::eval(stmt);
  {
    Leaf leaf = make_sddmm_row(A, B, C, D);
    A.zero();
    leaf(PieceBounds{});
    EXPECT_LE(ref::max_abs_diff(A, expect), 1e-10) << mc.name << " row";
  }
  {
    Leaf leaf = make_sddmm_nz(A, B, C, D);
    A.zero();
    const Coord nnz = B.storage().level(1).positions;
    PieceBounds p1, p2;
    p1.dist_pos = rt::Rect1{0, nnz / 2};
    p2.dist_pos = rt::Rect1{nnz / 2 + 1, nnz - 1};
    leaf(p1);
    if (!p2.dist_pos->empty()) leaf(p2);
    EXPECT_LE(ref::max_abs_diff(A, expect), 1e-10) << mc.name << " nz";
  }
}

INSTANTIATE_TEST_SUITE_P(Structures, SddmmKernel, ::testing::Range(0, 6));

struct TensorCase {
  const char* name;
  fmt::Format format;
  std::function<fmt::Coo()> make;
};

std::vector<TensorCase> tensor_cases() {
  return {
      {"uniform_csf", fmt::csf3(),
       [] { return data::uniform_3tensor(20, 15, 25, 300, 5); }},
      {"powerlaw_csf", fmt::csf3(),
       [] { return data::powerlaw_3tensor(30, 20, 10, 400, 1.2, 6); }},
      {"patents_ddc", fmt::ddc3(),
       [] { return data::patents_like_3tensor(6, 8, 30, 0.2, 7); }},
  };
}

class SpttvKernel : public ::testing::TestWithParam<int> {};

TEST_P(SpttvKernel, MatchesReference) {
  const TensorCase tc = tensor_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j"), k("k");
  fmt::Coo coo = tc.make();
  const auto dims = coo.dims;
  Tensor A("A", {dims[0], dims[1]}, fmt::csr());
  Tensor B("B", dims, tc.format);
  Tensor c("c", {dims[2]}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.3 * static_cast<double>(x[0] % 5);
  });
  Statement& stmt = (A(i, j) = B(i, j, k) * c(k));
  assemble_output(stmt);
  Leaf leaf = make_spttv_row(A, B, c);
  A.zero();
  // Two row pieces.
  PieceBounds p1, p2;
  p1.dist_coords = rt::Rect1{0, dims[0] / 2};
  p2.dist_coords = rt::Rect1{dims[0] / 2 + 1, dims[0] - 1};
  leaf(p1);
  if (!p2.dist_coords->empty()) leaf(p2);
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(Structures, SpttvKernel, ::testing::Range(0, 3));

class SpmttkrpKernel : public ::testing::TestWithParam<int> {};

TEST_P(SpmttkrpKernel, MatchesReference) {
  const TensorCase tc = tensor_cases()[static_cast<size_t>(GetParam())];
  IndexVar i("i"), j("j"), k("k"), l("l");
  fmt::Coo coo = tc.make();
  const auto dims = coo.dims;
  const Coord L = 5;
  Tensor A("A", {dims[0], L}, fmt::dense_matrix());
  Tensor B("B", dims, tc.format);
  Tensor C("C", {dims[1], L}, fmt::dense_matrix());
  Tensor D("D", {dims[2], L}, fmt::dense_matrix());
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.25 * static_cast<double>((x[0] + 2 * x[1]) % 3);
  });
  D.init_dense([](const auto& x) {
    return 1.0 - 0.125 * static_cast<double>((2 * x[0] + x[1]) % 5);
  });
  Statement& stmt = (A(i, l) = B(i, j, k) * C(j, l) * D(k, l));
  Leaf leaf = make_spmttkrp_row(A, B, C, D);
  A.zero();
  leaf(PieceBounds{});
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-9) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(Structures, SpmttkrpKernel, ::testing::Range(0, 3));

// Work estimates scale with the work actually performed.
TEST(WorkEstimates, ScaleWithNnz) {
  IndexVar i("i"), j("j");
  fmt::Coo small = data::uniform_matrix(40, 40, 100, 8);
  fmt::Coo large = data::uniform_matrix(40, 40, 800, 9);
  auto measure = [&](fmt::Coo coo) {
    const Coord n = coo.dims[0];
    Tensor a("a", {n}, fmt::dense_vector());
    Tensor B("B", coo.dims, fmt::csr());
    Tensor c("c", {coo.dims[1]}, fmt::dense_vector());
    B.from_coo(std::move(coo));
    c.init_dense([](const auto&) { return 1.0; });
    Leaf leaf = make_spmv_row(a, B, c);
    a.zero();
    return leaf(PieceBounds{});
  };
  const rt::WorkEstimate ws = measure(std::move(small));
  const rt::WorkEstimate wl = measure(std::move(large));
  EXPECT_GT(wl.flops, 4 * ws.flops);
  EXPECT_GT(wl.bytes, 2 * ws.bytes);
}

}  // namespace
}  // namespace spdistal::kern
