// Auto-scheduler tests: the enumerator emits only compiler-accepted
// schedules, searched schedules reproduce the dense oracle exactly, the plan
// cache is deterministic (hit without re-simulation on identical inputs),
// and searched plans are at least as good as the paper's hand-written ones.
#include <gtest/gtest.h>

#include <limits>

#include "autosched/autosched.h"
#include "autosched/cost.h"
#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "tensor/dense_ref.h"

namespace spdistal::autosched {
namespace {

using rt::Coord;

rt::Machine cpu_machine(int nodes) {
  return rt::Machine(data::paper_machine_config(nodes), rt::Grid(nodes),
                     rt::ProcKind::CPU);
}

rt::Machine gpu_machine(int nodes, int gpus) {
  return rt::Machine(data::paper_machine_config(nodes), rt::Grid(gpus),
                     rt::ProcKind::GPU);
}

// Unscheduled statements for three paper kernels. The returned output
// tensor keeps the recorded statement (and all bindings) alive.
struct BuiltStmt {
  Tensor out;
  Statement* stmt = nullptr;
};

BuiltStmt build_spmv(uint64_t seed) {
  IndexVar i("i"), j("j");
  const Coord n = 300;
  Tensor a("a", {n}, fmt::dense_vector());
  Tensor B("B", {n, n}, fmt::csr());
  Tensor c("c", {n}, fmt::dense_vector());
  B.from_coo(data::powerlaw_matrix(n, n, 4000, 1.3, seed));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  BuiltStmt b;
  b.stmt = &(a(i) = B(i, j) * c(j));
  b.out = a;
  return b;
}

BuiltStmt build_sddmm(uint64_t seed) {
  IndexVar i("i"), j("j"), k("k");
  const Coord n = 200, r = 8;
  Tensor A("A", {n, n}, fmt::csr());
  Tensor B("B", {n, n}, fmt::csr());
  Tensor C("C", {n, r}, fmt::dense_matrix());
  Tensor D("D", {r, n}, fmt::dense_matrix());
  B.from_coo(data::powerlaw_matrix(n, n, 2500, 1.2, seed));
  C.init_dense([](const auto& x) {
    return 1.0 + 0.02 * static_cast<double>((x[0] + x[1]) % 13);
  });
  D.init_dense([](const auto& x) {
    return 0.5 - 0.02 * static_cast<double>((2 * x[0] + x[1]) % 11);
  });
  BuiltStmt b;
  b.stmt = &(A(i, j) = B(i, j) * C(i, k) * D(k, j));
  b.out = A;
  return b;
}

BuiltStmt build_spmttkrp(uint64_t seed) {
  IndexVar i("i"), j("j"), k("k"), l("l");
  const Coord d0 = 60, d1 = 40, d2 = 30, r = 8;
  Tensor A("A", {d0, r}, fmt::dense_matrix());
  Tensor B("B", {d0, d1, d2}, fmt::csf3());
  Tensor C("C", {d1, r}, fmt::dense_matrix());
  Tensor D("D", {d2, r}, fmt::dense_matrix());
  B.from_coo(data::powerlaw_3tensor(d0, d1, d2, 2000, 1.2, seed));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.01 * static_cast<double>((x[0] + 2 * x[1]) % 7);
  });
  D.init_dense([](const auto& x) {
    return 1.0 - 0.01 * static_cast<double>((2 * x[0] + x[1]) % 5);
  });
  BuiltStmt b;
  b.stmt = &(A(i, l) = B(i, j, k) * C(j, l) * D(k, l));
  b.out = A;
  return b;
}

// Steady-state seconds/iteration of `schedule` on the real data.
double measure(Statement& stmt, const sched::Schedule& schedule,
               const rt::Machine& m) {
  rt::Runtime runtime(m);
  auto inst =
      comp::CompiledKernel::compile(stmt, schedule, m).instantiate(runtime);
  inst->run(1);
  runtime.reset_timing();
  inst->run(3);
  return inst->report().sim_time / 3;
}

TEST(Enumerate, OnlyEmitsCompilableSchedules) {
  for (const rt::Machine& m : {cpu_machine(4), gpu_machine(1, 4)}) {
    for (auto* build : {&build_spmv, &build_sddmm, &build_spmttkrp}) {
      BuiltStmt b = build(1);
      const auto cands = enumerate_candidates(*b.stmt, m, Options{});
      ASSERT_FALSE(cands.empty());
      for (const auto& c : cands) {
        EXPECT_NO_THROW(comp::CompiledKernel::compile(*b.stmt, c.schedule, m))
            << c.recipe.str();
      }
      // Recipes are unique.
      for (size_t x = 0; x < cands.size(); ++x) {
        for (size_t y = x + 1; y < cands.size(); ++y) {
          EXPECT_FALSE(cands[x].recipe == cands[y].recipe);
        }
      }
    }
  }
}

TEST(Enumerate, CoversUniverseAndNonZeroFamilies) {
  BuiltStmt b = build_spmv(2);
  const auto cands = enumerate_candidates(*b.stmt, cpu_machine(4), Options{});
  bool universe = false, nonzero = false;
  for (const auto& c : cands) {
    (c.recipe.position_space ? nonzero : universe) = true;
    if (c.recipe.position_space) {
      EXPECT_EQ(c.recipe.split_tensor, "B");
      EXPECT_EQ(c.recipe.fuse_depth, 2);
    }
  }
  EXPECT_TRUE(universe);
  EXPECT_TRUE(nonzero);
}

TEST(EnumerateGrid3, EmitsRank3FactorizationsOnLargeMachines) {
  // 8 processors factor as 2x2x2: statements with >= 3 index variables get
  // rank-3 machine-grid recipes (lowering already handles them).
  BuiltStmt b = build_sddmm(5);
  const auto cands = enumerate_candidates(*b.stmt, cpu_machine(8), Options{});
  bool rank3 = false;
  for (const auto& c : cands) {
    if (c.recipe.pieces_z > 1) {
      rank3 = true;
      EXPECT_GT(c.recipe.pieces_y, 1);
      EXPECT_FALSE(c.recipe.position_space);
      EXPECT_EQ(c.recipe.pieces * c.recipe.pieces_y * c.recipe.pieces_z, 8);
    }
  }
  EXPECT_TRUE(rank3);
  // Statements with only two variables never get a z axis.
  BuiltStmt spmv = build_spmv(6);
  for (const auto& c :
       enumerate_candidates(*spmv.stmt, cpu_machine(8), Options{})) {
    EXPECT_EQ(c.recipe.pieces_z, 1);
  }
}

TEST(EnumerateGrid3, Rank3RecipeMatchesOracleOnGridMachine) {
  IndexVar i("i"), j("j"), k("k");
  const Coord n = 64;
  Tensor A("A", {n, 16}, fmt::dense_matrix());
  Tensor B("B", {n, n}, fmt::csr());
  Tensor C("C", {n, 16}, fmt::dense_matrix());
  B.from_coo(data::powerlaw_matrix(n, n, 700, 1.2, 21));
  C.init_dense([](const auto& x) {
    return 0.25 + 0.01 * static_cast<double>((x[0] + 3 * x[1]) % 19);
  });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));

  Recipe r;
  r.pieces = 2;
  r.pieces_y = 2;
  r.pieces_z = 2;
  sched::Schedule s = materialize(r, stmt);
  rt::Machine m(data::paper_machine_config(8), rt::Grid(2, 2, 2),
                rt::ProcKind::CPU);
  comp::CompiledKernel ck = comp::CompiledKernel::compile(stmt, s, m);
  EXPECT_EQ(ck.grid_pieces(), (std::vector<int>{2, 2, 2}));
  rt::Runtime runtime(m);
  auto inst = ck.instantiate(runtime);
  inst->run(2);  // steady state: the k-axis reduction must stay correct
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10);
}

TEST(Autoschedule, SearchedSchedulesMatchDenseOracle) {
  for (const rt::Machine& m : {cpu_machine(4), gpu_machine(1, 4)}) {
    for (auto* build : {&build_spmv, &build_sddmm, &build_spmttkrp}) {
      BuiltStmt b = build(3);
      Options opt;
      opt.use_cache = false;
      b.out.schedule() = autoschedule(*b.stmt, m, opt);
      rt::Runtime runtime(m);
      auto inst =
          comp::CompiledKernel::compile(*b.stmt, m).instantiate(runtime);
      inst->run(2);  // steady state must stay correct too
      EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10)
          << b.stmt->str();
    }
  }
}

TEST(Autoschedule, CompileWithoutScheduleSearchesImplicitly) {
  BuiltStmt b = build_spmv(4);
  const rt::Machine m = cpu_machine(4);
  EXPECT_FALSE(b.out.schedule().distributed_var().has_value());
  rt::Runtime runtime(m);
  auto inst = comp::CompiledKernel::compile(*b.stmt, m).instantiate(runtime);
  inst->run(1);
  EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10);
  // The plan is used, not recorded: a later compile for a *different*
  // machine must search again rather than replay a stale machine-specific
  // schedule.
  EXPECT_FALSE(b.out.schedule().distributed_var().has_value());
  const rt::Machine g = gpu_machine(1, 4);
  rt::Runtime gpu_runtime(g);
  auto ginst = comp::CompiledKernel::compile(*b.stmt, g).instantiate(gpu_runtime);
  EXPECT_GE(ginst->pieces(), g.num_procs());
  ginst->run(1);
  EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10);
}

TEST(Autoschedule, PartialScheduleStillRaisesScheduleError) {
  // A recorded-but-incomplete schedule (no distribute()) is a user mistake,
  // not a request for search: the pre-existing clear error must survive.
  BuiltStmt b = build_spmv(12);
  IndexVar i = tin::statement_vars(b.stmt->assignment)[0];
  IndexVar io("io"), ii("ii");
  b.out.schedule().divide(i, io, ii, 4).parallelize(
      ii, sched::ParallelUnit::CPUThread);
  EXPECT_THROW(comp::CompiledKernel::compile(*b.stmt, cpu_machine(4)),
               ScheduleError);
}

TEST(Autoschedule, TensorAutoscheduleRecordsSchedule) {
  BuiltStmt b = build_sddmm(5);
  const rt::Machine m = cpu_machine(2);
  sched::Schedule& s = b.out.autoschedule(m);
  EXPECT_TRUE(s.distributed_var().has_value());
  EXPECT_NO_THROW(comp::CompiledKernel::compile(*b.stmt, m));
}

TEST(PlanCache, SecondSearchHitsWithoutResimulation) {
  PlanCache::global().clear();
  const rt::Machine m = cpu_machine(4);

  BuiltStmt b1 = build_spmv(6);
  Result r1 = autoschedule_search(*b1.stmt, m);
  EXPECT_FALSE(r1.from_cache);
  EXPECT_GT(r1.simulated, 0);
  EXPECT_EQ(PlanCache::global().misses(), 1);
  EXPECT_EQ(PlanCache::global().size(), 1u);

  // A structurally identical statement built from fresh IndexVars and fresh
  // tensors (same data) is served from the cache with zero simulations.
  BuiltStmt b2 = build_spmv(6);
  Result r2 = autoschedule_search(*b2.stmt, m);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r2.simulated, 0);
  EXPECT_TRUE(r2.recipe == r1.recipe);
  EXPECT_EQ(PlanCache::global().hits(), 1);

  // The rehydrated schedule is legal and equivalent for the new statement.
  EXPECT_NO_THROW(comp::CompiledKernel::compile(*b2.stmt, r2.schedule, m));
  EXPECT_NEAR(measure(*b1.stmt, r1.schedule, m),
              measure(*b2.stmt, r2.schedule, m), 1e-12);

  // Different sparsity (same shape) or different machine: both miss.
  BuiltStmt b3 = build_spmv(7);
  Result r3 = autoschedule_search(*b3.stmt, m);
  EXPECT_FALSE(r3.from_cache);
  Result r4 = autoschedule_search(*b1.stmt, cpu_machine(8));
  EXPECT_FALSE(r4.from_cache);
  EXPECT_EQ(PlanCache::global().misses(), 3);
}

// The acceptance bound: for each paper kernel, on a CPU and a GPU machine
// shape, the searched schedule's simulated makespan is within 1.1x of the
// hand-written paper schedule's.
TEST(Autoschedule, WithinElevenTenthsOfHandWrittenSchedules) {
  struct Case {
    const char* name;
    BuiltStmt (*build)(uint64_t);
    // Installs the paper's hand-written schedule (bench_util's universe
    // row-distribution builds).
    void (*hand)(BuiltStmt&, int pieces);
  };
  const Case cases[] = {
      {"spmv", &build_spmv,
       [](BuiltStmt& b, int pieces) {
         IndexVar i = tin::statement_vars(b.stmt->assignment)[0];
         IndexVar io("io"), ii("ii");
         b.out.schedule()
             .divide(i, io, ii, pieces)
             .distribute(io)
             .communicate({"a", "B", "c"}, io)
             .parallelize(ii, sched::ParallelUnit::CPUThread);
       }},
      {"sddmm", &build_sddmm,
       [](BuiltStmt& b, int pieces) {
         IndexVar i = tin::statement_vars(b.stmt->assignment)[0];
         IndexVar io("io"), ii("ii");
         b.out.schedule()
             .divide(i, io, ii, pieces)
             .distribute(io)
             .parallelize(ii, sched::ParallelUnit::CPUThread);
       }},
      {"spmttkrp", &build_spmttkrp,
       [](BuiltStmt& b, int pieces) {
         IndexVar i = tin::statement_vars(b.stmt->assignment)[0];
         IndexVar io("io"), ii("ii");
         b.out.schedule()
             .divide(i, io, ii, pieces)
             .distribute(io)
             .parallelize(ii, sched::ParallelUnit::CPUThread);
       }},
  };
  for (const rt::Machine& m : {cpu_machine(4), gpu_machine(1, 4)}) {
    for (const Case& c : cases) {
      BuiltStmt hand = c.build(8);
      c.hand(hand, m.num_procs());
      const double t_hand = measure(*hand.stmt, hand.out.schedule(), m);

      BuiltStmt searched = c.build(8);
      Options opt;
      opt.use_cache = false;
      Result r = autoschedule_search(*searched.stmt, m, opt);
      const double t_search = measure(*searched.stmt, r.schedule, m);

      EXPECT_LE(t_search, 1.1 * t_hand)
          << c.name << " on " << rt::proc_kind_name(m.kind()) << ": searched "
          << r.recipe.str() << " " << t_search << "s vs hand " << t_hand
          << "s";
    }
  }
}

// An unscheduled SpMM over a heavily skewed matrix (a few giant rows). The
// larger leading dimension keeps row blocks coarse enough that a 2-D grid's
// column split is what restores balance.
BuiltStmt build_skewed_spmm(uint64_t seed) {
  IndexVar i("i"), j("j"), k("k");
  const Coord n = 400, jdim = 32;
  Tensor A("A", {n, jdim}, fmt::dense_matrix());
  Tensor B("B", {n, n}, fmt::csr());
  Tensor C("C", {n, jdim}, fmt::dense_matrix());
  B.from_coo(data::powerlaw_matrix(n, n, 8000, 1.6, seed));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.01 * static_cast<double>((x[0] + x[1]) % 13);
  });
  BuiltStmt b;
  b.stmt = &(A(i, j) = B(i, k) * C(k, j));
  b.out = A;
  return b;
}

// The enumerator proposes (px, py) grid recipes on multi-processor machines
// and at least one of them beats every 1-D universe distribution on skewed
// SpMM — the communication/balance win of the paper's Grid(x, y) schedules.
TEST(EnumerateGrid, MultiAxisRecipeBeatsBest1dOnSkewedSpmm) {
  BuiltStmt b = build_skewed_spmm(31);
  const rt::Machine m = cpu_machine(8);
  Options opt;
  opt.use_cache = false;
  opt.sim_top_k = 0;  // simulate everything: compare true simulated times
  const auto cands = enumerate_candidates(*b.stmt, m, opt);

  bool any_grid = false, any_nz_grid = false;
  for (const auto& c : cands) {
    if (c.recipe.pieces_y > 1) {
      (c.recipe.position_space ? any_nz_grid : any_grid) = true;
      EXPECT_NO_THROW(comp::CompiledKernel::compile(*b.stmt, c.schedule, m))
          << c.recipe.str();
    }
  }
  ASSERT_TRUE(any_grid);
  // Cross-products of non-zero and universe splits are searched too.
  EXPECT_TRUE(any_nz_grid);

  Statement proxy = make_proxy(*b.stmt, opt);
  double best_grid = std::numeric_limits<double>::infinity();
  double best_1d = std::numeric_limits<double>::infinity();
  for (const auto& c : cands) {
    if (c.recipe.position_space) continue;
    const double t = simulate_candidate(proxy, c.schedule, m, opt);
    auto& best = c.recipe.pieces_y > 1 ? best_grid : best_1d;
    best = std::min(best, t);
  }
  EXPECT_LT(best_grid, best_1d);
}

// Grid recipes searched end-to-end still reproduce the oracle, and the plan
// cache round-trips pieces_y.
TEST(EnumerateGrid, SearchedGridScheduleMatchesOracleAndCaches) {
  PlanCache::global().clear();
  BuiltStmt b = build_skewed_spmm(32);
  const rt::Machine m = cpu_machine(8);
  Options opt;
  opt.sim_top_k = 0;
  Result r = autoschedule_search(*b.stmt, m, opt);
  b.out.schedule() = r.schedule;
  rt::Runtime runtime(m);
  auto inst = comp::CompiledKernel::compile(*b.stmt, m).instantiate(runtime);
  inst->run(2);
  EXPECT_LE(ref::max_abs_diff(b.out, ref::eval(*b.stmt)), 1e-10);

  // A fresh structurally identical statement hits the cache and rehydrates
  // the same recipe (including any grid shape).
  BuiltStmt b2 = build_skewed_spmm(32);
  Result r2 = autoschedule_search(*b2.stmt, m, opt);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_TRUE(r2.recipe == r.recipe);
  EXPECT_NO_THROW(comp::CompiledKernel::compile(*b2.stmt, r2.schedule, m));
}

TEST(Proxy, SampleCooIsDeterministicAndStructurePreserving) {
  fmt::Coo coo = data::powerlaw_matrix(500, 500, 20000, 1.3, 9);
  fmt::Coo s1 = data::sample_coo(coo, 4000, 1);
  fmt::Coo s2 = data::sample_coo(coo, 4000, 1);
  EXPECT_EQ(s1.dims, coo.dims);
  EXPECT_LE(s1.nnz(), 4000);
  EXPECT_GE(s1.nnz(), 3000);  // sort_and_combine may merge a few duplicates
  ASSERT_EQ(s1.nnz(), s2.nnz());
  EXPECT_EQ(s1.coords, s2.coords);
  // Small inputs pass through untouched.
  EXPECT_EQ(data::sample_coo(coo, 1 << 20, 1).nnz(), coo.nnz());
}

TEST(Proxy, MakeProxyClonesWithoutSharing) {
  BuiltStmt b = build_spmv(10);
  Options opt;
  opt.max_sim_nnz = 1000;  // force downsampling
  Statement proxy = make_proxy(*b.stmt, opt);
  EXPECT_LE(proxy.tensor("B").storage().nnz(), 1000);
  EXPECT_GT(proxy.tensor("B").storage().nnz(), 0);
  // Proxy tensors are fresh handles: running candidates on them must not
  // touch the user's data.
  EXPECT_FALSE(proxy.tensor("a").same_as(b.stmt->tensor("a")));
  EXPECT_FALSE(proxy.tensor("B").same_as(b.stmt->tensor("B")));
}

}  // namespace
}  // namespace spdistal::autosched
