// Tests for the general co-iteration engine and two-phase assembly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kernels/assembly.h"
#include "kernels/coiter.h"
#include "tensor/dense_ref.h"

namespace spdistal::kern {
namespace {

using rt::Coord;

fmt::Coo small_csr_coo() {
  fmt::Coo coo;
  coo.dims = {4, 4};
  coo.push({0, 0}, 1.0);
  coo.push({0, 1}, 2.0);
  coo.push({0, 3}, 3.0);
  coo.push({1, 1}, 4.0);
  coo.push({1, 3}, 5.0);
  coo.push({2, 0}, 6.0);
  coo.push({3, 0}, 7.0);
  coo.push({3, 3}, 8.0);
  return coo;
}

TEST(LocatePosition, FindsAndMisses) {
  Tensor B("B", {4, 4}, fmt::csr());
  B.from_coo(small_csr_coo());
  EXPECT_EQ(locate_position(B.storage(), {0, 0}), 0);
  EXPECT_EQ(locate_position(B.storage(), {0, 3}), 2);
  EXPECT_EQ(locate_position(B.storage(), {3, 3}), 7);
  EXPECT_EQ(locate_position(B.storage(), {0, 2}), -1);
  EXPECT_EQ(locate_position(B.storage(), {2, 3}), -1);
}

TEST(LocatePosition, WalksSingletonChains) {
  Tensor B("B", {4, 4}, fmt::coo(2));
  B.from_coo(small_csr_coo());
  // COO positions enumerate entries in sorted order.
  EXPECT_EQ(locate_position(B.storage(), {0, 0}), 0);
  EXPECT_EQ(locate_position(B.storage(), {0, 3}), 2);
  EXPECT_EQ(locate_position(B.storage(), {3, 3}), 7);
  EXPECT_EQ(locate_position(B.storage(), {0, 2}), -1);
  EXPECT_EQ(locate_position(B.storage(), {2, 3}), -1);
}

TEST(Coiter, CooSpmvMatchesReference) {
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::coo(2));
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  c.init_dense([](const auto& x) { return static_cast<double>(x[0] + 1); });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  CoiterEngine eng(stmt);
  a.zero();
  eng.run();
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
  // Value iteration restricted to rows 0-1 + rows 2-3 also completes.
  a.zero();
  for (Coord lo : {0, 2}) {
    PieceBounds piece;
    piece.dist_coords = rt::Rect1{lo, lo + 1};
    eng.run(piece);
  }
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
}

TEST(Coiter, Coo3SpttvPositionSpaceWithMidChainClamp) {
  IndexVar i("i"), j("j"), k("k");
  fmt::Coo coo = data::uniform_3tensor(8, 6, 10, 60, 21);
  Tensor A("A", {8, 6}, fmt::csr());
  Tensor B("B", {8, 6, 10}, fmt::coo(3));
  Tensor c("c", {10}, fmt::dense_vector());
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) { return 1.0 + 0.5 * (x[0] % 3); });
  Statement& stmt = (A(i, j) = B(i, j, k) * c(k));
  assemble_output(stmt);
  CoiterEngine eng(stmt, {i, j, k});
  const fmt::TensorStorage& bs = B.storage();
  const Coord nnz = bs.level(2).positions;
  // Position-space over the fused Singleton chain, two nz pieces.
  A.zero();
  for (Coord lo = 0; lo < nnz; lo += (nnz + 1) / 2) {
    PieceBounds piece;
    piece.dist_pos =
        rt::Rect1{lo, std::min<Coord>(lo + (nnz + 1) / 2 - 1, nnz - 1)};
    piece.pos_tensor = "B";
    piece.pos_level = 2;
    eng.run(piece);
  }
  const ref::DenseTensor expect = ref::eval(stmt);
  EXPECT_LE(ref::max_abs_diff(A, expect), 1e-12);
  // Mid-chain clamping: full position range, but each piece clamps the
  // fused variable j to half its coordinate range; the pieces tile the
  // computation exactly.
  A.zero();
  for (Coord lo : {0, 3}) {
    PieceBounds piece;
    piece.dist_pos = rt::Rect1{0, nnz - 1};
    piece.pos_tensor = "B";
    piece.pos_level = 2;
    piece.var_coords.push_back({j.id(), rt::Rect1{lo, lo + 2}});
    eng.run(piece);
  }
  EXPECT_LE(ref::max_abs_diff(A, expect), 1e-12);
}

TEST(Coiter, TwoNonUniqueOperandsRejected) {
  // Two COO operands sharing the iteration variables cannot co-iterate:
  // one non-unique level would have to be probed.
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::coo(2));
  Tensor C("C", {4, 4}, fmt::coo(2));
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  C.from_coo(small_csr_coo());
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = B(i, j) * C(i, j) * c(j));
  CoiterEngine eng(stmt);
  a.zero();
  EXPECT_THROW(eng.run(), ScheduleError);
}

TEST(Coiter, SpmvMatchesReference) {
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  c.init_dense([](const auto& x) { return static_cast<double>(x[0] + 1); });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  CoiterEngine eng(stmt);
  a.zero();
  eng.run();
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
}

TEST(Coiter, PieceRestrictionComputesPartial) {
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  CoiterEngine eng(stmt);
  a.zero();
  PieceBounds piece;
  piece.dist_coords = rt::Rect1{0, 1};  // rows 0-1 only
  eng.run(piece);
  auto& av = *a.storage().vals();
  EXPECT_DOUBLE_EQ(av[0], 6.0);
  EXPECT_DOUBLE_EQ(av[1], 9.0);
  EXPECT_DOUBLE_EQ(av[2], 0.0);
  EXPECT_DOUBLE_EQ(av[3], 0.0);
  // The remaining piece completes the result.
  PieceBounds rest;
  rest.dist_coords = rt::Rect1{2, 3};
  eng.run(rest);
  EXPECT_DOUBLE_EQ(av[2], 6.0);
  EXPECT_DOUBLE_EQ(av[3], 15.0);
}

TEST(Coiter, PositionSpaceIterationMatches) {
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  c.init_dense([](const auto& x) { return 0.5 * static_cast<double>(x[0]); });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  CoiterEngine eng(stmt);
  a.zero();
  // Two pieces of 4 positions each.
  for (Coord lo : {0, 4}) {
    PieceBounds piece;
    piece.dist_pos = rt::Rect1{lo, lo + 3};
    piece.pos_tensor = "B";
    piece.pos_level = 1;
    eng.run(piece);
  }
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
}

TEST(Coiter, IntersectionOfTwoSparse) {
  // Element-wise product of two sparse matrices: intersection iteration.
  IndexVar i("i"), j("j");
  Tensor A("A", {4, 4}, fmt::dense_matrix());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor C("C", {4, 4}, fmt::csr());
  B.from_coo(small_csr_coo());
  C.from_coo(data::shift_last_dim(small_csr_coo(), 1));
  Statement& stmt = (A(i, j) = B(i, j) * C(i, j));
  CoiterEngine eng(stmt);
  A.zero();
  eng.run();
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-12);
}

TEST(Coiter, RejectsIncompatibleOrder) {
  // B stored CSC but iterated row-major with a sparse column level first:
  // iteration order (i, j) conflicts with CSC's (j, i) levels.
  IndexVar i("i"), j("j");
  Tensor a("a", {4}, fmt::dense_vector());
  Tensor B("B", {4, 4}, fmt::csc());
  Tensor c("c", {4}, fmt::dense_vector());
  B.from_coo(small_csr_coo());
  Statement& stmt = (a(i) = B(i, j) * c(j));
  EXPECT_THROW(CoiterEngine eng(stmt), ScheduleError);
  // With the matching order (j, i) it is accepted.
  CoiterEngine ok(stmt, {j, i});
  a.zero();
  c.init_dense([](const auto&) { return 1.0; });
  ok.run();
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
}

TEST(Assembly, SpAdd3UnionPattern) {
  IndexVar i("i"), j("j");
  Tensor A("A", {4, 4}, fmt::csr());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor C("C", {4, 4}, fmt::csr());
  Tensor D("D", {4, 4}, fmt::csr());
  B.from_coo(small_csr_coo());
  C.from_coo(data::shift_last_dim(small_csr_coo(), 1));
  D.from_coo(data::shift_last_dim(small_csr_coo(), 2));
  Statement& stmt = (A(i, j) = B(i, j) + C(i, j) + D(i, j));
  ASSERT_TRUE(needs_assembly(stmt));
  AssemblyResult res = assemble_output(stmt);
  EXPECT_FALSE(res.pattern_preserved);
  EXPECT_GE(res.output_nnz, 8);   // at least one input's pattern
  EXPECT_LE(res.output_nnz, 24);  // at most the union
  // Numeric pass through coiter matches the reference.
  CoiterEngine eng(stmt);
  A.zero();
  eng.run();
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-12);
}

TEST(Assembly, SpTtvProjectsPattern) {
  IndexVar i("i"), j("j"), k("k");
  Tensor A("A", {3, 4}, fmt::csr());
  Tensor B("B", {3, 4, 5}, fmt::csf3());
  Tensor c("c", {5}, fmt::dense_vector());
  fmt::Coo coo;
  coo.dims = {3, 4, 5};
  coo.push({0, 1, 2}, 1.0);
  coo.push({0, 1, 4}, 2.0);
  coo.push({2, 3, 0}, 3.0);
  B.from_coo(std::move(coo));
  c.init_dense([](const auto&) { return 2.0; });
  Statement& stmt = (A(i, j) = B(i, j, k) * c(k));
  AssemblyResult res = assemble_output(stmt);
  EXPECT_EQ(res.output_nnz, 2);  // fibers (0,1) and (2,3)
  CoiterEngine eng(stmt);
  A.zero();
  eng.run();
  EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-12);
}

TEST(Assembly, SddmmPreservesPattern) {
  IndexVar i("i"), j("j"), k("k");
  Tensor A("A", {4, 4}, fmt::csr());
  Tensor B("B", {4, 4}, fmt::csr());
  Tensor C("C", {4, 3}, fmt::dense_matrix());
  Tensor D("D", {3, 4}, fmt::dense_matrix());
  B.from_coo(small_csr_coo());
  Statement& stmt = (A(i, j) = B(i, j) * C(i, k) * D(k, j));
  AssemblyResult res = assemble_output(stmt);
  EXPECT_TRUE(res.pattern_preserved);
  EXPECT_EQ(res.output_nnz, 8);
}

TEST(Assembly, RejectsUncoveredOutputVar) {
  IndexVar i("i"), j("j");
  Tensor A("A", {4, 4}, fmt::csr());
  Tensor b("b", {4}, fmt::dcsr().order() == 1 ? fmt::dense_vector()
                                              : fmt::dense_vector());
  Tensor s("s", {4},
           fmt::Format({fmt::ModeFormat::Compressed()}));
  fmt::Coo coo;
  coo.dims = {4};
  coo.push({1}, 2.0);
  s.from_coo(std::move(coo));
  // A(i,j) = s(i): j is not covered by any sparse input.
  Statement& stmt = (A(i, j) = s(i));
  EXPECT_THROW(assemble_output(stmt), NotationError);
}

// Property: random einsum-like statements evaluated by the engine agree
// with the dense reference.
class CoiterRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoiterRandomProperty, MatchesDenseReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 42);
  const Coord n = 3 + static_cast<Coord>(rng.next_below(6));
  const Coord m = 3 + static_cast<Coord>(rng.next_below(6));
  const Coord p = 3 + static_cast<Coord>(rng.next_below(6));
  IndexVar i("i"), j("j"), k("k");

  auto random_matrix = [&](const std::string& name, Coord r, Coord c,
                           const fmt::Format& f) {
    Tensor t(name, {r, c}, f);
    fmt::Coo coo;
    coo.dims = {r, c};
    const int count = static_cast<int>(rng.next_below(
        static_cast<uint64_t>(r * c / 2 + 1)));
    for (int e = 0; e < count; ++e) {
      coo.push({rng.next_range(0, r - 1), rng.next_range(0, c - 1)},
               rng.next_double(-1, 1));
    }
    t.from_coo(std::move(coo));
    return t;
  };

  switch (GetParam() % 3) {
    case 0: {  // SpMM-like with sparse B
      Tensor A("A", {n, p}, fmt::dense_matrix());
      Tensor B = random_matrix("B", n, m, fmt::csr());
      Tensor C("C", {m, p}, fmt::dense_matrix());
      C.init_dense([&](const auto& x) {
        return static_cast<double>(x[0]) - 0.5 * static_cast<double>(x[1]);
      });
      Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
      CoiterEngine eng(stmt, {i, k, j});
      A.zero();
      eng.run();
      EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10);
      break;
    }
    case 1: {  // two-sparse sum
      Tensor A("A", {n, m}, fmt::csr());
      Tensor B = random_matrix("B", n, m, fmt::csr());
      Tensor C = random_matrix("C", n, m, fmt::csr());
      Statement& stmt = (A(i, j) = B(i, j) + C(i, j));
      assemble_output(stmt);
      CoiterEngine eng(stmt);
      A.zero();
      eng.run();
      EXPECT_LE(ref::max_abs_diff(A, ref::eval(stmt)), 1e-10);
      break;
    }
    case 2: {  // sparse-dense elementwise with reduction: y(i) = S(i,k)*T(i,k)
      Tensor y("y", {n}, fmt::dense_vector());
      Tensor S = random_matrix("S", n, m, fmt::csr());
      Tensor T = random_matrix("T", n, m, fmt::dcsr());
      Statement& stmt = (y(i) = S(i, k) * T(i, k));
      CoiterEngine eng(stmt);
      y.zero();
      eng.run();
      EXPECT_LE(ref::max_abs_diff(y, ref::eval(stmt)), 1e-10);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStatements, CoiterRandomProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace spdistal::kern
