// Tests for the Table I level functions and full coordinate-tree
// partitioning (paper §IV-B, Figures 8 & 9c/d).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "format/level_format.h"

namespace spdistal::fmt {
namespace {

using comp::PlanOpKind;
using comp::PlanTrace;
using rt::Coord;
using rt::Rect1;

Coo paper_coo() {
  Coo coo;
  coo.dims = {4, 4};
  coo.push({0, 0}, 1.0);
  coo.push({0, 1}, 2.0);
  coo.push({0, 3}, 3.0);
  coo.push({1, 1}, 4.0);
  coo.push({1, 3}, 5.0);
  coo.push({2, 0}, 6.0);
  coo.push({3, 0}, 7.0);
  coo.push({3, 3}, 8.0);
  return coo;
}

// Figure 9c: row-based SpMV partition. Initial universe partition of the
// Dense row level; derived partitions: pos copied from parent, crd = image,
// vals copied from crd.
TEST(CoordinateTree, RowBasedUniverseMatchesFigure9c) {
  TensorStorage B = pack("B", csr(), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l1 = B.level(0);
  LevelPartitions init = LevelFuncs::get(l1.kind).universe_partition(
      trace, "B", 0, l1, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 0, init);

  // Level 1 (rows): {0,1} and {2,3}.
  EXPECT_EQ(tp.level_parts[0].subset(0).volume(), 2);
  EXPECT_EQ(tp.level_parts[0].subset(1).volume(), 2);
  // Level 2 (crd positions): {0..4} and {5..7}.
  EXPECT_EQ(tp.level_parts[1].subset(0).bounds(), rt::RectN::make1(0, 4));
  EXPECT_EQ(tp.level_parts[1].subset(1).bounds(), rt::RectN::make1(5, 7));
  // vals mirror crd.
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 5);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 3);

  // Generated "code" has the Figure 9b shape: a universe coloring, a
  // partitionByBounds, a pos copy + crd image, and a vals copy.
  EXPECT_EQ(trace.count(PlanOpKind::MakeUniverseColoring), 1);
  EXPECT_EQ(trace.count(PlanOpKind::PartitionByBounds), 1);
  EXPECT_EQ(trace.count(PlanOpKind::Image), 1);
  EXPECT_EQ(trace.count(PlanOpKind::CopyPartition), 2);  // pos + vals
  EXPECT_EQ(trace.count(PlanOpKind::Preimage), 0);
}

// Figure 9d: non-zero SpMV partition. Initial non-zero partition of the
// Compressed level; pos derived via preimage (overlapping), vals copied.
TEST(CoordinateTree, NonZeroMatchesFigure9d) {
  TensorStorage B = pack("B", csr(), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  LevelPartitions init = LevelFuncs::get(l2.kind).nonzero_partition(
      trace, "B", 1, l2, {Rect1{0, 3}, Rect1{4, 7}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 1, init);

  // crd partition: {0..3}, {4..7} (perfect non-zero balance).
  EXPECT_EQ(tp.level_parts[1].subset(0).volume(), 4);
  EXPECT_EQ(tp.level_parts[1].subset(1).volume(), 4);
  // Row partition via preimage: row 1's segment {3,4} spans the cut, so it
  // is colored twice (Figure 8b).
  EXPECT_TRUE(tp.level_parts[0].subset(0).contains_point1(1));
  EXPECT_TRUE(tp.level_parts[0].subset(1).contains_point1(1));
  EXPECT_FALSE(tp.level_parts[0].disjoint());

  EXPECT_EQ(trace.count(PlanOpKind::MakeNonZeroColoring), 1);
  EXPECT_EQ(trace.count(PlanOpKind::Preimage), 1);
  EXPECT_EQ(trace.count(PlanOpKind::Image), 0);
}

// Universe partition of the Compressed level itself (column-space split):
// buckets crd entries by coordinate value, then preimages pos.
TEST(CoordinateTree, CompressedUniversePartition) {
  TensorStorage B = pack("B", csr(), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  LevelPartitions init = LevelFuncs::get(l2.kind).universe_partition(
      trace, "B", 1, l2, {Rect1{0, 1}, Rect1{2, 3}});
  // crd = 0 1 3 1 3 0 0 3 -> color 0 gets 5 positions, color 1 gets 3.
  EXPECT_EQ(init.child_facing.subset(0).volume(), 5);
  EXPECT_EQ(init.child_facing.subset(1).volume(), 3);
  EXPECT_EQ(trace.count(PlanOpKind::PartitionByValueRanges), 1);
  // Rows 0 and 3 touch both column halves: pos partition overlaps.
  EXPECT_FALSE(init.parent_facing.disjoint());
}

// CSF 3-tensor: partitioning the top level must propagate down two
// Compressed levels to vals.
TEST(CoordinateTree, Csf3TopDown) {
  Coo coo;
  coo.dims = {4, 5, 6};
  coo.push({0, 1, 2}, 1.0);
  coo.push({0, 1, 3}, 2.0);
  coo.push({1, 0, 0}, 3.0);
  coo.push({3, 4, 5}, 4.0);
  TensorStorage B = pack("B", csf3(), {4, 5, 6}, std::move(coo));
  PlanTrace trace;
  const LevelStorage& l1 = B.level(0);
  LevelPartitions init = LevelFuncs::get(l1.kind).universe_partition(
      trace, "B", 0, l1, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 0, init);
  // Slices 0-1 hold 3 values; slices 2-3 hold 1.
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 3);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 1);
  EXPECT_EQ(trace.count(PlanOpKind::Image), 2);  // two Compressed levels
}

// Fused non-zero partition of a 3-tensor's last level must propagate *up*
// through preimages to the top.
TEST(CoordinateTree, Csf3BottomUp) {
  Coo coo;
  coo.dims = {4, 5, 6};
  coo.push({0, 1, 2}, 1.0);
  coo.push({0, 1, 3}, 2.0);
  coo.push({1, 0, 0}, 3.0);
  coo.push({3, 4, 5}, 4.0);
  TensorStorage B = pack("B", csf3(), {4, 5, 6}, std::move(coo));
  PlanTrace trace;
  const LevelStorage& l3 = B.level(2);
  LevelPartitions init = LevelFuncs::get(l3.kind).nonzero_partition(
      trace, "B", 2, l3, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 2, init);
  // Both colors hold 2 values.
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 2);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 2);
  // The top level's partition covers every non-empty slice.
  EXPECT_TRUE(tp.level_parts[0].subset(0).contains_point1(0));
  EXPECT_TRUE(tp.level_parts[0].subset(1).contains_point1(3));
  // Upward propagation through a Compressed level uses preimage twice
  // (initial pos + one partitionFromChild).
  EXPECT_GE(trace.count(PlanOpKind::Preimage), 2);
}

// Patents-style {Dense, Dense, Compressed}: the middle Dense level expands /
// collapses partitions through linearized positions.
TEST(CoordinateTree, Ddc3DenseExpansion) {
  Coo coo;
  coo.dims = {4, 3, 6};
  coo.push({0, 0, 2}, 1.0);
  coo.push({0, 2, 3}, 2.0);
  coo.push({2, 1, 0}, 3.0);
  coo.push({3, 2, 5}, 4.0);
  TensorStorage B = pack("B", ddc3(), {4, 3, 6}, std::move(coo));
  PlanTrace trace;
  const LevelStorage& l1 = B.level(0);
  LevelPartitions init = LevelFuncs::get(l1.kind).universe_partition(
      trace, "B", 0, l1, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 0, init);
  // Dense level 2 expands rows {0,1} to positions {0..5}, rows {2,3} to
  // positions {6..11}.
  EXPECT_EQ(tp.level_parts[1].subset(0).bounds(), rt::RectN::make1(0, 5));
  EXPECT_EQ(tp.level_parts[1].subset(1).bounds(), rt::RectN::make1(6, 11));
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 2);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 2);
  EXPECT_EQ(trace.count(PlanOpKind::ExpandDense), 1);
}

TEST(CoordinateTree, DenseDeepUniverseRejected) {
  Coo coo;
  coo.dims = {4, 3};
  coo.push({0, 0}, 1.0);
  TensorStorage B =
      pack("B", Format({ModeFormat::Dense(), ModeFormat::Dense()}), {4, 3},
           std::move(coo));
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  EXPECT_THROW(LevelFuncs::get(l2.kind).universe_partition(
                   trace, "B", 1, l2, {Rect1{0, 1}, Rect1{2, 2}}),
               ScheduleError);
}

// --- Singleton level functions (Table I for COO chains) ----------------------

Coo paper_coo3() {
  Coo coo;
  coo.dims = {4, 5, 6};
  coo.push({0, 1, 2}, 1.0);
  coo.push({0, 1, 3}, 2.0);
  coo.push({1, 0, 0}, 3.0);
  coo.push({3, 4, 5}, 4.0);
  return coo;
}

// Non-zero partition of a COO matrix: splitting the Singleton chain's end
// propagates the same position ranges unchanged up to the Compressed root
// (positions are shared 1:1) and down to vals.
TEST(SingletonLevelFuncs, NonZeroPartitionPropagatesUnchanged) {
  TensorStorage B = pack("B", fmt::coo(2), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  ASSERT_TRUE(l2.kind.is_singleton());
  LevelPartitions init = LevelFuncs::get(l2.kind).nonzero_partition(
      trace, "B", 1, l2, {Rect1{0, 3}, Rect1{4, 7}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 1, init);
  // Every level (and vals) carries exactly the same position split.
  for (int l = 0; l < 2; ++l) {
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(0).bounds(),
              rt::RectN::make1(0, 3));
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(1).bounds(),
              rt::RectN::make1(4, 7));
    EXPECT_TRUE(tp.level_parts[static_cast<size_t>(l)].disjoint());
  }
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 4);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 4);
  EXPECT_TRUE(tp.vals_part.complete());
  // The derivations are pure copies: no images or preimages appear.
  EXPECT_EQ(trace.count(PlanOpKind::Image), 0);
  EXPECT_EQ(trace.count(PlanOpKind::Preimage), 0);
  EXPECT_GE(trace.count(PlanOpKind::CopyPartition), 2);
}

// Universe partition at a Singleton level buckets its crd by coordinate
// value; the parent-facing partition is the same sets, copied.
TEST(SingletonLevelFuncs, UniversePartitionBucketsByValue) {
  TensorStorage B = pack("B", fmt::coo(2), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  LevelPartitions init = LevelFuncs::get(l2.kind).universe_partition(
      trace, "B", 1, l2, {Rect1{0, 1}, Rect1{2, 3}});
  // Columns = 0 1 3 1 3 0 0 3 -> color 0 holds 5 positions, color 1 holds 3.
  EXPECT_EQ(init.child_facing.subset(0).volume(), 5);
  EXPECT_EQ(init.child_facing.subset(1).volume(), 3);
  EXPECT_EQ(init.parent_facing.subset(0).volume(), 5);
  EXPECT_EQ(init.parent_facing.subset(1).volume(), 3);
  EXPECT_EQ(trace.count(PlanOpKind::PartitionByValueRanges), 1);
}

// 3-D COO: a universe partition of the Compressed(non-unique) root splits
// duplicate row coordinates together, and the whole Singleton chain below
// follows by copy.
TEST(SingletonLevelFuncs, Coo3RootUniverseDerivesChain) {
  TensorStorage B = pack("B", fmt::coo(3), {4, 5, 6}, paper_coo3());
  PlanTrace trace;
  const LevelStorage& l1 = B.level(0);
  ASSERT_TRUE(l1.kind.is_compressed());
  EXPECT_FALSE(l1.kind.unique());
  LevelPartitions init = LevelFuncs::get(l1.kind).universe_partition(
      trace, "B", 0, l1, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 0, init);
  // Rows 0,0,1 -> color 0 (3 entries); row 3 -> color 1 (1 entry).
  EXPECT_EQ(tp.vals_part.subset(0).volume(), 3);
  EXPECT_EQ(tp.vals_part.subset(1).volume(), 1);
  EXPECT_TRUE(tp.vals_part.complete());
  EXPECT_TRUE(tp.vals_part.disjoint());
  // Singleton chain levels mirror the root's position partition.
  for (int l = 1; l < 3; ++l) {
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(0).volume(), 3);
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(1).volume(), 1);
  }
}

// Fused non-zero split of the 3-D COO chain: the initial partition at the
// last Singleton propagates to every level and vals unchanged.
TEST(SingletonLevelFuncs, Coo3NonZeroChain) {
  TensorStorage B = pack("B", fmt::coo(3), {4, 5, 6}, paper_coo3());
  PlanTrace trace;
  const LevelStorage& l3 = B.level(2);
  LevelPartitions init = LevelFuncs::get(l3.kind).nonzero_partition(
      trace, "B", 2, l3, {Rect1{0, 1}, Rect1{2, 3}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 2, init);
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(0).bounds(),
              rt::RectN::make1(0, 1));
    EXPECT_EQ(tp.level_parts[static_cast<size_t>(l)].subset(1).bounds(),
              rt::RectN::make1(2, 3));
  }
  EXPECT_TRUE(tp.vals_part.complete());
  EXPECT_TRUE(tp.vals_part.disjoint());
}

// color_bytes counts Singleton levels as crd-only (no pos bytes).
TEST(SingletonLevelFuncs, ColorBytesCountsCrdOnly) {
  TensorStorage B = pack("B", fmt::coo(2), {4, 4}, paper_coo());
  PlanTrace trace;
  const LevelStorage& l2 = B.level(1);
  LevelPartitions init = LevelFuncs::get(l2.kind).nonzero_partition(
      trace, "B", 1, l2, {Rect1{0, 3}, Rect1{4, 7}});
  TensorPartition tp = partition_coordinate_tree(trace, B, 1, init);
  // Per color: 4 vals (8B), 4 root crd (4B), 4 singleton crd (4B), and the
  // root pos region (1 PosRange entry, parent_positions == 1).
  const int64_t expect = 4 * 8 + 4 * 4 + 4 * 4 +
                         static_cast<int64_t>(sizeof(rt::PosRange));
  EXPECT_EQ(tp.color_bytes(B, 0), expect);
  EXPECT_EQ(tp.color_bytes(B, 1), expect);
}

// Property: on random CSR tensors, every coordinate-tree partition (row and
// non-zero based) keeps all values reachable: the union of vals subsets is
// complete, and each color's rows/crds cover exactly its vals.
class CoordinateTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoordinateTreeProperty, ValsCoverage) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 19);
  const Coord n = 2 + static_cast<Coord>(rng.next_below(50));
  const Coord m = 2 + static_cast<Coord>(rng.next_below(50));
  Coo coo;
  coo.dims = {n, m};
  const int k = 1 + static_cast<int>(rng.next_below(150));
  for (int i = 0; i < k; ++i) {
    coo.push({rng.next_range(0, n - 1), rng.next_range(0, m - 1)}, 1.0);
  }
  TensorStorage B = pack("B", csr(), {n, m}, std::move(coo));
  const int pieces = 1 + static_cast<int>(rng.next_below(5));

  {
    PlanTrace trace;
    rt::Partition rows = rt::partition_equal(rt::IndexSpace(n), pieces);
    std::vector<Rect1> bounds;
    for (int c = 0; c < pieces; ++c) {
      const auto& rects = rows.subset(c).rects();
      bounds.push_back(rects.empty() ? Rect1{0, -1}
                                     : Rect1{rects[0].lo[0], rects[0].hi[0]});
    }
    LevelPartitions init = LevelFuncs::get(ModeFormat::Dense())
                               .universe_partition(trace, "B", 0, B.level(0),
                                                   bounds);
    TensorPartition tp = partition_coordinate_tree(trace, B, 0, init);
    EXPECT_TRUE(tp.vals_part.complete());
    EXPECT_TRUE(tp.vals_part.disjoint());
  }
  {
    PlanTrace trace;
    rt::Partition nz =
        rt::partition_equal(rt::IndexSpace(B.level(1).positions), pieces);
    std::vector<Rect1> bounds;
    for (int c = 0; c < pieces; ++c) {
      const auto& rects = nz.subset(c).rects();
      bounds.push_back(rects.empty() ? Rect1{0, -1}
                                     : Rect1{rects[0].lo[0], rects[0].hi[0]});
    }
    LevelPartitions init = LevelFuncs::get(ModeFormat::Compressed())
                               .nonzero_partition(trace, "B", 1, B.level(1),
                                                  bounds);
    TensorPartition tp = partition_coordinate_tree(trace, B, 1, init);
    EXPECT_TRUE(tp.vals_part.complete());
    EXPECT_TRUE(tp.vals_part.disjoint());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCsr, CoordinateTreeProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace spdistal::fmt
