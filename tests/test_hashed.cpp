// End-to-end coverage of the Hashed level kind: unordered pack with an
// open-addressing (parent, coordinate) -> position index, O(1) locate
// probes (direct and through co-iteration), compiled pipelines with a
// hashed probe-side operand bit-identical across executor widths, and the
// probe-only restriction — a hashed level can never drive iteration.
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "kernels/coiter.h"
#include "tensor/dense_ref.h"

namespace spdistal {
namespace {

using rt::Coord;

constexpr int kExecWidths[] = {1, 4};

rt::Machine scaled_cpu(int nodes) {
  rt::MachineConfig cfg = data::paper_machine_config(nodes);
  return rt::Machine(cfg, rt::Grid(nodes), rt::ProcKind::CPU);
}

fmt::Coo paper_coo() {
  fmt::Coo coo;
  coo.dims = {4, 4};
  coo.push({0, 0}, 1.0);
  coo.push({0, 1}, 2.0);
  coo.push({0, 3}, 3.0);
  coo.push({1, 1}, 4.0);
  coo.push({1, 3}, 5.0);
  coo.push({2, 0}, 6.0);
  coo.push({3, 0}, 7.0);
  coo.push({3, 3}, 8.0);
  return coo;
}

// --- pack layout --------------------------------------------------------------

TEST(HashedPack, HashIndexInvariantsAndRoundTrip) {
  fmt::Coo coo = data::powerlaw_matrix(41, 33, 250, 1.2, 9);
  fmt::Coo sorted = coo;
  sorted.sort_and_combine({0, 1});
  Tensor B("B", {41, 33}, fmt::hashed_csr());
  B.from_coo(std::move(coo));
  const fmt::LevelStorage& l1 = B.storage().level(1);
  EXPECT_TRUE(l1.kind.is_hashed());
  EXPECT_FALSE(l1.kind.ordered());
  ASSERT_TRUE(l1.hash);
  // Power-of-two table at load factor <= 0.5.
  const Coord table = static_cast<Coord>(l1.hash->space().volume());
  EXPECT_EQ(table & (table - 1), 0);
  EXPECT_GE(table, 2 * l1.positions);
  // Every position appears in exactly one slot.
  std::vector<int> seen(static_cast<size_t>(l1.positions), 0);
  for (Coord s = 0; s < table; ++s) {
    const int32_t q = (*l1.hash)[s];
    if (q >= 0) ++seen[static_cast<size_t>(q)];
  }
  for (Coord q = 0; q < l1.positions; ++q) {
    EXPECT_EQ(seen[static_cast<size_t>(q)], 1) << "position " << q;
  }
  // to_coo re-sorts the hash-order storage back to coordinate order.
  const fmt::Coo back = B.storage().to_coo();
  ASSERT_EQ(back.nnz(), sorted.nnz());
  for (int64_t q = 0; q < back.nnz(); ++q) {
    EXPECT_EQ(back.coords[static_cast<size_t>(q)],
              sorted.coords[static_cast<size_t>(q)]);
    EXPECT_EQ(back.vals[static_cast<size_t>(q)],
              sorted.vals[static_cast<size_t>(q)]);
  }
}

TEST(HashedPack, LocateProbesFindAndMiss) {
  Tensor B("B", {4, 4}, fmt::hashed_csr());
  B.from_coo(paper_coo());
  // Positions sit in hash-slot order, so locate is checked by value: the
  // position it returns must hold the probed coordinate's value.
  auto value_at = [&](Coord i, Coord j) -> double {
    const Coord q = kern::locate_position(B.storage(), {i, j});
    return q < 0 ? -1.0 : (*B.storage().vals())[q];
  };
  EXPECT_EQ(value_at(0, 0), 1.0);
  EXPECT_EQ(value_at(0, 3), 3.0);
  EXPECT_EQ(value_at(2, 0), 6.0);
  EXPECT_EQ(value_at(3, 3), 8.0);
  EXPECT_EQ(kern::locate_position(B.storage(), {0, 2}), -1);
  EXPECT_EQ(kern::locate_position(B.storage(), {2, 3}), -1);

  Tensor d("d", {16}, fmt::hashed_vector());
  fmt::Coo vec;
  vec.dims = {16};
  for (Coord c : {1, 4, 7, 13}) {
    vec.push({c}, static_cast<double>(c) + 0.5);
  }
  d.from_coo(std::move(vec));
  for (Coord c : {1, 4, 7, 13}) {
    const Coord q = kern::locate_position(d.storage(), {c});
    ASSERT_GE(q, 0) << c;
    EXPECT_EQ((*d.storage().vals())[q], static_cast<double>(c) + 0.5);
  }
  EXPECT_EQ(kern::locate_position(d.storage(), {0}), -1);
  EXPECT_EQ(kern::locate_position(d.storage(), {15}), -1);
}

// --- co-iteration -------------------------------------------------------------

TEST(HashedCoiter, ProbesHashedOperands) {
  IndexVar i("i"), j("j");
  // Matrix probe: CSR drives, the hashed copy is located per coordinate.
  {
    Tensor a("a", {4}, fmt::dense_vector());
    Tensor B("B", {4, 4}, fmt::csr());
    Tensor C("C", {4, 4}, fmt::hashed_csr());
    B.from_coo(paper_coo());
    C.from_coo(paper_coo());
    Statement& stmt = (a(i) = B(i, j) * C(i, j));
    kern::CoiterEngine eng(stmt);
    a.zero();
    eng.run();
    EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
  }
  // Vector probe: the sparse matrix drives j, d(j) is hash-probed.
  {
    Tensor a("a", {4}, fmt::dense_vector());
    Tensor B("B", {4, 4}, fmt::csr());
    Tensor d("d", {4}, fmt::hashed_vector());
    B.from_coo(paper_coo());
    fmt::Coo vec;
    vec.dims = {4};
    vec.push({0}, 2.0);
    vec.push({3}, 4.0);
    d.from_coo(std::move(vec));
    Statement& stmt = (a(i) = B(i, j) * d(j));
    kern::CoiterEngine eng(stmt);
    a.zero();
    eng.run();
    EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-12);
  }
}

TEST(HashedCoiter, HashedDriverRejectedWithClearError) {
  IndexVar i("i");
  // Only the hashed operand stores i: it would have to drive the loop.
  Tensor a("a", {16}, fmt::dense_vector());
  Tensor d("d", {16}, fmt::hashed_vector());
  Tensor c("c", {16}, fmt::dense_vector());
  fmt::Coo vec;
  vec.dims = {16};
  vec.push({2}, 1.0);
  vec.push({9}, 3.0);
  d.from_coo(std::move(vec));
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = d(i) * c(i));
  kern::CoiterEngine eng(stmt);
  a.zero();
  try {
    eng.run();
    FAIL() << "hashed driver must be rejected";
  } catch (const ScheduleError& e) {
    EXPECT_NE(std::string(e.what()).find("Hashed"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("probe-only"), std::string::npos)
        << e.what();
  }
}

// --- compiled end-to-end ------------------------------------------------------

struct RunResult {
  std::vector<double> out;
  std::string leaf;
};

// a(i) = B(i,j) * C(i,j) with C hashed: the compiled pipeline falls back to
// the general co-iteration leaf, probing C through its hash index.
RunResult run_hashed_probe(int exec_threads) {
  IndexVar i("i"), j("j"), io("io"), ii("ii");
  fmt::Coo coo = data::powerlaw_matrix(96, 72, 600, 1.2, 11);
  const Coord n = coo.dims[0];
  const Coord m = coo.dims[1];
  Tensor a("a", {n}, fmt::dense_vector());
  Tensor B("B", {n, m}, fmt::csr());
  Tensor C("C", {n, m}, fmt::hashed_csr());
  fmt::Coo copy = coo;
  B.from_coo(std::move(coo));
  C.from_coo(std::move(copy));
  Statement& stmt = (a(i) = B(i, j) * C(i, j));
  a.schedule().divide(i, io, ii, 4).distribute(io);
  rt::Machine machine = scaled_cpu(4);
  rt::Runtime runtime(machine, exec_threads);
  comp::CompiledKernel ck = comp::CompiledKernel::compile(stmt, machine);
  auto inst = ck.instantiate(runtime);
  inst->run(2);
  EXPECT_LE(ref::max_abs_diff(a, ref::eval(stmt)), 1e-10)
      << "hashed probe x" << exec_threads;
  RunResult res;
  res.leaf = ck.leaf_kernel_name();
  for (Coord q = 0; q < n; ++q) {
    res.out.push_back((*a.storage().vals())[q]);
  }
  return res;
}

TEST(HashedE2E, CompiledProbeMatchesOracleBitIdenticalAcrossWidths) {
  RunResult base = run_hashed_probe(kExecWidths[0]);
  for (size_t w = 1; w < std::size(kExecWidths); ++w) {
    RunResult other = run_hashed_probe(kExecWidths[w]);
    ASSERT_EQ(base.out.size(), other.out.size());
    for (size_t q = 0; q < base.out.size(); ++q) {
      EXPECT_EQ(base.out[q], other.out[q]) << "val " << q;
    }
    EXPECT_EQ(base.leaf, other.leaf);
  }
}

// The same data in CSR and hashed-CSR probe positions produces the same
// values (hash order changes storage, not results).
TEST(HashedE2E, HashedOperandAgreesWithCsrOperand) {
  IndexVar i("i"), j("j");
  fmt::Coo coo = data::powerlaw_matrix(64, 64, 400, 1.3, 7);
  std::vector<double> outs[2];
  int at = 0;
  for (const fmt::Format& probe_fmt : {fmt::csr(), fmt::hashed_csr()}) {
    Tensor a("a", {64}, fmt::dense_vector());
    Tensor B("B", {64, 64}, fmt::csr());
    Tensor C("C", {64, 64}, probe_fmt);
    fmt::Coo b = coo, c = coo;
    B.from_coo(std::move(b));
    C.from_coo(std::move(c));
    Statement& stmt = (a(i) = B(i, j) * C(i, j));
    kern::CoiterEngine eng(stmt);
    a.zero();
    eng.run();
    for (Coord q = 0; q < 64; ++q) {
      outs[at].push_back((*a.storage().vals())[q]);
    }
    ++at;
  }
  for (size_t q = 0; q < outs[0].size(); ++q) {
    EXPECT_EQ(outs[0][q], outs[1][q]) << "row " << q;
  }
}

// divide_pos through a hashed level is rejected at compile time: hashed
// positions sit in hash-slot order, so a contiguous position range is not a
// meaningful coordinate range.
TEST(HashedSchedule, DividePosOnHashedRejected) {
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi");
  Tensor a("a", {32}, fmt::dense_vector());
  Tensor B("B", {32, 32}, fmt::hashed_csr());
  Tensor c("c", {32}, fmt::dense_vector());
  B.from_coo(data::uniform_matrix(32, 32, 100, 13));
  c.init_dense([](const auto&) { return 1.0; });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, 4, "B").distribute(fo);
  rt::Machine machine = scaled_cpu(4);
  EXPECT_THROW(comp::CompiledKernel::compile(stmt, machine), ScheduleError);
}

}  // namespace
}  // namespace spdistal
