// Figure 10: CPU strong scaling of SpMV, SpMM, SpAdd3, SDDMM, SpTTV and
// SpMTTKRP on 1-16 nodes, SpDISTAL vs PETSc-like, Trilinos-like and
// CTF-like. For each kernel the harness prints, per system and node count,
// the geometric-mean speedup over SpDISTAL on one node (the paper's
// normalization), plus the median speedup of SpDISTAL over each baseline
// (the §VI-A1 headline numbers).
#include <cstdlib>

#include "bench_util.h"

namespace spdbench {

using base::KernelKind;

struct SystemSpec {
  std::string name;
  std::function<Result(KernelKind, const fmt::Coo&, const rt::Machine&)> run;
};

void run_kernel(KernelKind kind, bool spd_nz,
                const std::vector<data::DatasetInfo>& datasets,
                const std::vector<SystemSpec>& baselines) {
  const std::vector<int> node_counts = {1, 2, 4, 8, 16};
  print_header(strprintf("Figure 10: %s CPU strong scaling (speedup over "
                         "SpDISTAL @ 1 node)",
                         base::kernel_kind_name(kind)));

  // results[system][nodes][dataset] = seconds (absent => DNC/unsupported).
  std::map<std::string, std::map<int, std::map<std::string, double>>> times;
  std::vector<double> spd_base;  // SpDISTAL 1-node per dataset
  // Search diagnostics (autosched::Result::summary) per (nodes, dataset)
  // for the optional searched-schedule row.
  std::map<int, std::map<std::string, std::string>> search_notes;
  const bool with_autosched =
      std::getenv("SPDISTAL_BENCH_AUTOSCHED") != nullptr;

  for (const auto& ds : datasets) {
    const fmt::Coo coo = ds.make();
    for (int nodes : node_counts) {
      rt::Machine m = make_machine(nodes, rt::ProcKind::CPU, nodes);
      Result spd = run_spdistal(kind, coo, spd_nz, m);
      if (spd.ok()) times["SpDISTAL"][nodes][ds.name] = spd.seconds;
      if (nodes == 1 && spd.ok()) spd_base.push_back(spd.seconds);
      for (const auto& sys : baselines) {
        Result r = sys.run(kind, coo, m);
        if (r.ok()) times[sys.name][nodes][ds.name] = r.seconds;
      }
      if (with_autosched) {
        Result r = run_spdistal_autosched(kind, coo, m);
        if (r.ok()) times["SpD-auto"][nodes][ds.name] = r.seconds;
        if (!r.note.empty()) search_notes[nodes][ds.name] = r.note;
      }
    }
  }

  std::printf("%-10s", "system");
  for (int n : node_counts) std::printf(" %8dN", n);
  std::printf("\n");
  print_rule(78);
  const double base1 = geomean(spd_base);
  std::vector<std::string> order = {"SpDISTAL"};
  if (with_autosched) order.push_back("SpD-auto");
  for (const auto& sys : baselines) order.push_back(sys.name);
  for (const auto& name : order) {
    std::printf("%-10s", name.c_str());
    for (int n : node_counts) {
      std::vector<double> xs;
      for (const auto& [ds, t] : times[name][n]) xs.push_back(t);
      if (xs.empty()) {
        std::printf(" %9s", "n/a");
      } else {
        std::printf(" %8.2fx", base1 / geomean(xs));
      }
    }
    std::printf("\n");
  }

  // Median speedups of SpDISTAL over each baseline across all
  // (dataset, node-count) pairs.
  for (const auto& sys : baselines) {
    std::vector<double> ratios;
    for (int n : node_counts) {
      const auto& spd = times["SpDISTAL"][n];
      for (const auto& [ds, t] : times[sys.name][n]) {
        auto it = spd.find(ds);
        if (it != spd.end()) ratios.push_back(t / it->second);
      }
    }
    if (ratios.empty()) continue;
    std::sort(ratios.begin(), ratios.end());
    std::printf("median SpDISTAL speedup over %-9s: %.2fx\n",
                sys.name.c_str(), ratios[ratios.size() / 2]);
  }

  // Attribution for the searched row: what the search considered and which
  // plan won, per (nodes, dataset) cell.
  for (const auto& [nodes, notes] : search_notes) {
    for (const auto& [ds, note] : notes) {
      std::printf("  SpD-auto %2dN %-12s %s\n", nodes, ds.c_str(),
                  note.c_str());
    }
  }
}

}  // namespace spdbench

int main() {
  using namespace spdbench;
  const SystemSpec petsc{"PETSc", run_petsc};
  const SystemSpec trilinos{"Trilinos", run_trilinos};
  const SystemSpec ctf{"CTF", run_ctf};

  const auto& matrices = data::matrix_datasets();
  const auto& tensors = data::tensor_datasets();

  run_kernel(base::KernelKind::SpMV, false, matrices,
             {petsc, trilinos, ctf});
  run_kernel(base::KernelKind::SpMM, false, matrices,
             {petsc, trilinos, ctf});
  run_kernel(base::KernelKind::SpAdd3, false, matrices,
             {petsc, trilinos, ctf});
  run_kernel(base::KernelKind::SDDMM, true, matrices, {ctf});
  run_kernel(base::KernelKind::SpTTV, false, tensors, {ctf});
  run_kernel(base::KernelKind::SpMTTKRP, false, tensors, {ctf});
  return 0;
}
