// Ablation (paper §VI-C): kernel fusion for SpAdd3. Compares SpDISTAL's
// fused single-pass three-way union merge against the pairwise-addition
// strategy libraries must use (two binary adds, each with intermediate
// assembly), with the library rank/threading structure held at SpDISTAL's
// configuration so only fusion varies.
#include "bench_util.h"

int main() {
  using namespace spdbench;
  using base::KernelKind;
  print_header("Ablation: SpAdd3 fused vs pairwise additions (8 nodes)");
  std::printf("%-18s %12s %12s %10s\n", "matrix", "fused ms", "pairwise ms",
              "speedup");
  print_rule(78);
  const int nodes = 8;
  rt::Machine m = make_machine(nodes, rt::ProcKind::CPU, nodes);
  for (const auto& ds : data::matrix_datasets()) {
    const fmt::Coo coo = ds.make();
    Result fused = run_spdistal(KernelKind::SpAdd3, coo, false, m);
    // Pairwise: the library model with node-level ranks and full threading,
    // i.e. SpDISTAL's execution structure minus fusion.
    base::LibraryParams p;
    p.name = "pairwise";
    p.ranks_per_node = 1;
    p.threads_per_rank = m.config().cores_per_node;
    p.add_assembly_passes = 3.0;
    base::LibrarySystem pairwise(p, m);
    Built b = build_kernel(KernelKind::SpAdd3, coo, false, nodes);
    double pw = 0;
    try {
      pw = pairwise.run(*b.stmt, kWarmIters, kTimedIters);
    } catch (const SpdError&) {
      continue;
    }
    if (!fused.ok()) continue;
    std::printf("%-18s %12.2f %12.2f %9.2fx\n", ds.name.c_str(),
                fused.seconds * 1e3, pw * 1e3, pw / fused.seconds);
  }
  return 0;
}
