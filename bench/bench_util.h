// Shared benchmark harness: builds each evaluation kernel (statement +
// schedule + data distributions) for a dataset, runs SpDISTAL and the three
// baseline systems on the scaled Lassen-like machine, and formats the
// tables/series of the paper's figures.
//
// Methodology (mirroring paper §VI): every run performs warm-up iterations
// (first-touch communication, instance placement), resets the simulated
// clocks, then times steady-state iterations. Trial counts are reduced from
// the paper's 10+20 because the simulator is deterministic.
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baselines/ctf_like.h"
#include "baselines/petsc_like.h"
#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "common/str_util.h"
#include "tensor/tensor.h"

namespace spdbench {

using namespace spdistal;  // NOLINT: benchmark binaries only

inline constexpr int kWarmIters = 1;
inline constexpr int kTimedIters = 3;
inline constexpr rt::Coord kSpmmJ = 32;   // dense columns in SpMM
inline constexpr rt::Coord kSddmmK = 32;  // inner dimension in SDDMM
inline constexpr rt::Coord kRank = 16;    // factor rank in SpMTTKRP

// A built kernel: output tensor (whose definition/schedule carry the
// statement) ready to compile or hand to a baseline.
struct Built {
  Tensor out;
  Statement* stmt = nullptr;
};

// Builds `kind` over `coo`. `nz` selects the non-zero (position-space)
// distribution + fused schedule; otherwise row-based universe distribution.
// Data distributions are matched to the computation distribution.
Built build_kernel(base::KernelKind kind, const fmt::Coo& coo, bool nz,
                   int pieces);

// One benchmark cell.
struct Result {
  double seconds = 0;
  bool dnc = false;
  bool unsupported = false;
  std::string note;

  bool ok() const { return !dnc && !unsupported; }
};

rt::Machine make_machine(int nodes, rt::ProcKind kind, int grid_size);

Result run_spdistal(base::KernelKind kind, const fmt::Coo& coo, bool nz,
                    const rt::Machine& machine);
// Same cell with the hand-written schedule wiped and the auto-scheduler
// searching instead; `note` carries the search diagnostics
// (autosched::Result::summary) so searched-vs-hand-written rows in the
// figure tables are attributable. Enabled in the fig harnesses via
// $SPDISTAL_BENCH_AUTOSCHED.
Result run_spdistal_autosched(base::KernelKind kind, const fmt::Coo& coo,
                              const rt::Machine& machine);
// The memory-conserving GPU SpMM schedule (SpDISTAL-Batched, §VI-A2):
// row-distributed compute with the dense operand partitioned by columns and
// cycled between devices in rounds.
Result run_spdistal_spmm_batched(const fmt::Coo& coo,
                                 const rt::Machine& machine);
Result run_petsc(base::KernelKind kind, const fmt::Coo& coo,
                 const rt::Machine& machine);
Result run_trilinos(base::KernelKind kind, const fmt::Coo& coo,
                    const rt::Machine& machine);
Result run_ctf(base::KernelKind kind, const fmt::Coo& coo,
               const rt::Machine& machine);

// --- formatting ---------------------------------------------------------------

double geomean(const std::vector<double>& xs);
std::string cell(const Result& r);  // "12.3" (ms) or "DNC"/"n/a"

void print_rule(int width);
void print_header(const std::string& title);

// One-line observability summary of a run: LaunchPlan memo hit-rate plus the
// top-3 kernels by simulated busy time ("[obs] spmv_row: plan hit-rate
// 85.7% (12/14) | spmv_row 24 tasks 1.2ms ..."). Empty when the report has
// no plan activity. The spdistal runners print it when obs::enabled(), so
// plain bench output is unchanged unless SPDISTAL_OBS/TRACE/METRICS is set.
std::string obs_summary(const rt::SimReport& rep);

// One-line calibration summary: for each kernel in the report with learned
// rates, the measured wall-per-flop/byte and its delta vs the machine
// model's static table ("[calib] spmv_row: 1.2e-10 s/flop (-18% vs static)
// ..."). Empty when calibration is off or nothing relevant was learned. The
// spdistal runners print it alongside the [obs] line.
std::string calib_summary(const rt::SimReport& rep,
                          const rt::Machine& machine);

// --- machine-readable bench output -------------------------------------------

// One row per benchmark: wall nanoseconds per operation plus the
// throughput counters google-benchmark derives from SetItemsProcessed /
// SetBytesProcessed (0 when a bench does not set them).
struct BenchRow {
  std::string name;
  double ns_per_op = 0;
  double items_per_s = 0;
  double bytes_per_s = 0;
};

// Persists rows as versioned JSON ({"version": 1, "benchmarks": [...]}),
// written atomically (tmp + rename, like the calibration and plan stores)
// so CI can diff and upload kernel trajectories without scraping stdout
// tables. Returns false on I/O failure.
bool write_bench_json(const std::string& path,
                      const std::vector<BenchRow>& rows);

// One-line plan-service summary: exact/fuzzy hit rate of the global
// PlanCache, entries loaded from the persistent store, and how many
// compiles searched cold vs were served warm ("[plan] cache 66.7% (4 exact
// + 2 fuzzy / 9 lookups) | store: 3 loaded | searches: 3 cold, 6 warm").
// Empty when the cache saw no lookups. Printed alongside [obs]/[calib].
std::string plan_summary();

}  // namespace spdbench
