// google-benchmark microbenchmarks for the leaf kernels: specialized kernels
// vs the general co-iteration engine (the specialization gap compilation
// buys at the leaves), plus a CSR-vs-COO comparison on the steady-state
// launch path (same schedule, different mode formats).
#include <benchmark/benchmark.h>

#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "kernels/assembly.h"
#include "kernels/leaf_kernels.h"

namespace {

using namespace spdistal;
using rt::Coord;

struct SpmvFixture {
  IndexVar i{"i"}, j{"j"};
  Tensor a, B, c;
  Statement* stmt;
  explicit SpmvFixture(int64_t nnz, fmt::Format format = fmt::csr()) {
    fmt::Coo coo = data::powerlaw_matrix(nnz / 12, nnz / 12, nnz, 1.1, 7);
    a = Tensor("a", {coo.dims[0]}, fmt::dense_vector());
    B = Tensor("B", coo.dims, std::move(format));
    c = Tensor("c", {coo.dims[1]}, fmt::dense_vector());
    B.from_coo(std::move(coo));
    c.init_dense([](const auto&) { return 1.0; });
    stmt = &(a(i) = B(i, j) * c(j));
  }
};

void BM_SpmvSpecialized(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::Leaf leaf = kern::make_spmv_row(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvSpecialized)->Arg(100000);

void BM_SpmvCoiter(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::CoiterEngine engine(*f.stmt);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(engine.run().flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvCoiter)->Arg(100000);

void BM_SpmvNz(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::Leaf leaf = kern::make_spmv_nz(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvNz)->Arg(100000);

// COO leaf: rows come from the root crd instead of a precomputed owner map.
void BM_SpmvNzCoo(benchmark::State& state) {
  SpmvFixture f(state.range(0), fmt::coo(2));
  kern::Leaf leaf = kern::make_spmv_nz(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvNzCoo)->Arg(100000);

// CSR vs COO through the whole steady-state launch path: identical
// non-zero schedule, warm LaunchPlan (the loop asserts no further plan
// misses), only the mode format differs.
void BM_SpmvSteadyState(benchmark::State& state, fmt::Format format) {
  SpmvFixture f(state.range(0), std::move(format));
  IndexVar fu("f"), fo("fo"), fi("fi");
  f.a.schedule()
      .fuse(f.i, f.j, fu)
      .divide_pos(fu, fo, fi, 8, "B")
      .distribute(fo);
  rt::Machine machine(data::paper_machine_config(8), rt::Grid(8),
                      rt::ProcKind::CPU);
  rt::Runtime runtime(machine, 1);
  auto inst =
      comp::CompiledKernel::compile(*f.stmt, machine).instantiate(runtime);
  inst->run(1);  // warm the plan memo
  const int64_t misses = runtime.report().plan_misses;
  for (auto _ : state) {
    inst->run(1);
  }
  if (runtime.report().plan_misses != misses) {
    state.SkipWithError("steady-state iteration missed the plan memo");
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK_CAPTURE(BM_SpmvSteadyState, csr, fmt::csr())->Arg(100000);
BENCHMARK_CAPTURE(BM_SpmvSteadyState, coo, fmt::coo(2))->Arg(100000);

void BM_Spadd3Fused(benchmark::State& state) {
  IndexVar i("i"), j("j");
  fmt::Coo coo = data::powerlaw_matrix(8000, 8000, state.range(0), 1.1, 8);
  Tensor A("A", coo.dims, fmt::csr());
  Tensor B("B", coo.dims, fmt::csr());
  Tensor C("C", coo.dims, fmt::csr());
  Tensor D("D", coo.dims, fmt::csr());
  B.from_coo(coo);
  C.from_coo(data::shift_last_dim(coo, 1));
  D.from_coo(data::shift_last_dim(coo, 2));
  Statement& stmt = (A(i, j) = B(i, j) + C(i, j) + D(i, j));
  kern::assemble_output(stmt);
  kern::Leaf leaf = kern::make_spadd3_row(A, B, C, D);
  for (auto _ : state) {
    A.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).bytes);
  }
  state.SetItemsProcessed(state.iterations() * 3 * B.storage().nnz());
}
BENCHMARK(BM_Spadd3Fused)->Arg(100000);

void BM_Assembly(benchmark::State& state) {
  IndexVar i("i"), j("j");
  fmt::Coo coo = data::powerlaw_matrix(8000, 8000, state.range(0), 1.1, 9);
  for (auto _ : state) {
    Tensor A("A", coo.dims, fmt::csr());
    Tensor B("B", coo.dims, fmt::csr());
    Tensor C("C", coo.dims, fmt::csr());
    B.from_coo(coo);
    C.from_coo(data::shift_last_dim(coo, 1));
    Statement& stmt = (A(i, j) = B(i, j) + C(i, j));
    benchmark::DoNotOptimize(kern::assemble_output(stmt).output_nnz);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_Assembly)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
