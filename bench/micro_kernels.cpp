// google-benchmark microbenchmarks for the leaf kernels: specialized kernels
// vs the general co-iteration engine (the specialization gap compilation
// buys at the leaves), a CSR-vs-COO comparison on the steady-state launch
// path (same schedule, different mode formats), and blocked-vs-CSR rows on
// a block-structured matrix (the register-tiled bcsr micro-kernels).
//
// Besides the stdout table, every finished run is recorded into
// BENCH_kernels.json (bench_util's shared writer), and the blocked rows'
// >= 1.5x speedup contract over their CSR twins is checked after the run —
// fatal under SPDISTAL_BENCH_ASSERT (the CI Release smoke gate), advisory
// otherwise.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "compiler/lower.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "kernels/assembly.h"
#include "kernels/leaf_kernels.h"

namespace {

using namespace spdistal;
using rt::Coord;

struct SpmvFixture {
  IndexVar i{"i"}, j{"j"};
  Tensor a, B, c;
  Statement* stmt;
  explicit SpmvFixture(int64_t nnz, fmt::Format format = fmt::csr()) {
    fmt::Coo coo = data::powerlaw_matrix(nnz / 12, nnz / 12, nnz, 1.1, 7);
    a = Tensor("a", {coo.dims[0]}, fmt::dense_vector());
    B = Tensor("B", coo.dims, std::move(format));
    c = Tensor("c", {coo.dims[1]}, fmt::dense_vector());
    B.from_coo(std::move(coo));
    c.init_dense([](const auto&) { return 1.0; });
    stmt = &(a(i) = B(i, j) * c(j));
  }
};

void BM_SpmvSpecialized(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::Leaf leaf = kern::make_spmv_row(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvSpecialized)->Arg(100000);

void BM_SpmvCoiter(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::CoiterEngine engine(*f.stmt);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(engine.run().flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvCoiter)->Arg(100000);

void BM_SpmvNz(benchmark::State& state) {
  SpmvFixture f(state.range(0));
  kern::Leaf leaf = kern::make_spmv_nz(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvNz)->Arg(100000);

// COO leaf: rows come from the root crd instead of a precomputed owner map.
void BM_SpmvNzCoo(benchmark::State& state) {
  SpmvFixture f(state.range(0), fmt::coo(2));
  kern::Leaf leaf = kern::make_spmv_nz(f.a, f.B, f.c);
  for (auto _ : state) {
    f.a.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).flops);
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK(BM_SpmvNzCoo)->Arg(100000);

// CSR vs COO through the whole steady-state launch path: identical
// non-zero schedule, warm LaunchPlan (the loop asserts no further plan
// misses), only the mode format differs.
void BM_SpmvSteadyState(benchmark::State& state, fmt::Format format) {
  SpmvFixture f(state.range(0), std::move(format));
  IndexVar fu("f"), fo("fo"), fi("fi");
  f.a.schedule()
      .fuse(f.i, f.j, fu)
      .divide_pos(fu, fo, fi, 8, "B")
      .distribute(fo);
  rt::Machine machine(data::paper_machine_config(8), rt::Grid(8),
                      rt::ProcKind::CPU);
  rt::Runtime runtime(machine, 1);
  auto inst =
      comp::CompiledKernel::compile(*f.stmt, machine).instantiate(runtime);
  inst->run(1);  // warm the plan memo
  const int64_t misses = runtime.report().plan_misses;
  for (auto _ : state) {
    inst->run(1);
  }
  if (runtime.report().plan_misses != misses) {
    state.SkipWithError("steady-state iteration missed the plan memo");
  }
  state.SetItemsProcessed(state.iterations() * f.B.storage().nnz());
}
BENCHMARK_CAPTURE(BM_SpmvSteadyState, csr, fmt::csr())->Arg(100000);
BENCHMARK_CAPTURE(BM_SpmvSteadyState, coo, fmt::coo(2))->Arg(100000);

// Blocked-vs-CSR rows: one block-structured matrix (fully dense 4x4 tiles,
// so the bcsr pack has padding factor ~1) packed both ways, measured through
// the leaf kernels kernel_select would pick for each format.
struct BlockedFixture {
  static constexpr Coord kN = 4096;
  static constexpr Coord kCols = 32;  // SpMM dense columns
  IndexVar i{"i"}, j{"j"}, k{"k"};
  Tensor a, B, c;     // SpMV operands
  Tensor A, Bk, C;    // SpMM operands (B re-indexed over (i, k))
  explicit BlockedFixture(fmt::Format format) {
    fmt::Coo coo = data::block_structured_matrix(kN, kN, 4, 4, 16, 11);
    a = Tensor("a", {kN}, fmt::dense_vector());
    B = Tensor("B", coo.dims, format);
    c = Tensor("c", {kN}, fmt::dense_vector());
    B.from_coo(coo);
    c.init_dense([](const auto&) { return 1.0; });
    A = Tensor("A", {kN, kCols}, fmt::dense_matrix());
    Bk = Tensor("Bk", coo.dims, std::move(format));
    C = Tensor("C", {kN, kCols}, fmt::dense_matrix());
    Bk.from_coo(std::move(coo));
    C.init_dense([](const auto&) { return 1.0; });
  }
};

void run_leaf_bench(benchmark::State& state, Tensor& out,
                    const kern::Leaf& leaf, int64_t nnz) {
  double bytes = 0;
  for (auto _ : state) {
    out.zero();
    bytes = leaf(kern::PieceBounds{}).bytes;
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}

void BM_SpmvBlockedCsr(benchmark::State& state) {
  BlockedFixture f(fmt::csr());
  run_leaf_bench(state, f.a, kern::make_spmv_row(f.a, f.B, f.c),
                 f.B.storage().nnz());
}
BENCHMARK(BM_SpmvBlockedCsr);

void BM_SpmvBlocked(benchmark::State& state) {
  BlockedFixture f(fmt::bcsr(4, 4));
  run_leaf_bench(state, f.a, kern::make_spmv_bcsr(f.a, f.B, f.c),
                 f.B.storage().nnz());
}
BENCHMARK(BM_SpmvBlocked);

void BM_SpmmBlockedCsr(benchmark::State& state) {
  BlockedFixture f(fmt::csr());
  run_leaf_bench(state, f.A, kern::make_spmm_row(f.A, f.Bk, f.C),
                 f.Bk.storage().nnz());
}
BENCHMARK(BM_SpmmBlockedCsr);

void BM_SpmmBlocked(benchmark::State& state) {
  BlockedFixture f(fmt::bcsr(4, 4));
  run_leaf_bench(state, f.A, kern::make_spmm_bcsr(f.A, f.Bk, f.C),
                 f.Bk.storage().nnz());
}
BENCHMARK(BM_SpmmBlocked);

void BM_Spadd3Fused(benchmark::State& state) {
  IndexVar i("i"), j("j");
  fmt::Coo coo = data::powerlaw_matrix(8000, 8000, state.range(0), 1.1, 8);
  Tensor A("A", coo.dims, fmt::csr());
  Tensor B("B", coo.dims, fmt::csr());
  Tensor C("C", coo.dims, fmt::csr());
  Tensor D("D", coo.dims, fmt::csr());
  B.from_coo(coo);
  C.from_coo(data::shift_last_dim(coo, 1));
  D.from_coo(data::shift_last_dim(coo, 2));
  Statement& stmt = (A(i, j) = B(i, j) + C(i, j) + D(i, j));
  kern::assemble_output(stmt);
  kern::Leaf leaf = kern::make_spadd3_row(A, B, C, D);
  for (auto _ : state) {
    A.zero();
    benchmark::DoNotOptimize(leaf(kern::PieceBounds{}).bytes);
  }
  state.SetItemsProcessed(state.iterations() * 3 * B.storage().nnz());
}
BENCHMARK(BM_Spadd3Fused)->Arg(100000);

void BM_Assembly(benchmark::State& state) {
  IndexVar i("i"), j("j");
  fmt::Coo coo = data::powerlaw_matrix(8000, 8000, state.range(0), 1.1, 9);
  for (auto _ : state) {
    Tensor A("A", coo.dims, fmt::csr());
    Tensor B("B", coo.dims, fmt::csr());
    Tensor C("C", coo.dims, fmt::csr());
    B.from_coo(coo);
    C.from_coo(data::shift_last_dim(coo, 1));
    Statement& stmt = (A(i, j) = B(i, j) + C(i, j));
    benchmark::DoNotOptimize(kern::assemble_output(stmt).output_nnz);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_Assembly)->Arg(50000);

// Console output stays the stock table; finished runs are additionally
// captured for the JSON trajectory file.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      double to_ns = 1.0;
      switch (run.time_unit) {
        case benchmark::kNanosecond: to_ns = 1.0; break;
        case benchmark::kMicrosecond: to_ns = 1e3; break;
        case benchmark::kMillisecond: to_ns = 1e6; break;
        case benchmark::kSecond: to_ns = 1e9; break;
      }
      spdbench::BenchRow row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime() * to_ns;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) row.items_per_s = it->second;
      it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) row.bytes_per_s = it->second;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }
  std::vector<spdbench::BenchRow> rows;
};

double row_ns(const std::vector<spdbench::BenchRow>& rows,
              const std::string& name) {
  for (const auto& r : rows) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!spdbench::write_bench_json("BENCH_kernels.json", reporter.rows)) {
    std::fprintf(stderr,
                 "micro_kernels: failed to write BENCH_kernels.json\n");
    return 1;
  }
  // The register-tiled speedup contract, checked on the recorded rows so
  // the JSON artifact and the gate can never disagree. Rows filtered out by
  // --benchmark_filter are simply not checked.
  int rc = 0;
  auto check = [&](const char* csr, const char* blocked) {
    const double t_csr = row_ns(reporter.rows, csr);
    const double t_blk = row_ns(reporter.rows, blocked);
    if (t_csr <= 0 || t_blk <= 0) return;
    const double speedup = t_csr / t_blk;
    std::printf("%s: %.2fx vs %s\n", blocked, speedup, csr);
    if (speedup < 1.5 && std::getenv("SPDISTAL_BENCH_ASSERT") != nullptr) {
      std::fprintf(stderr, "%s: expected >= 1.5x over %s, got %.2fx\n",
                   blocked, csr, speedup);
      rc = 1;
    }
  };
  check("BM_SpmvBlockedCsr", "BM_SpmvBlocked");
  check("BM_SpmmBlockedCsr", "BM_SpmmBlocked");
  return rc;
}
