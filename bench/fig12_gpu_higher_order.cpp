// Figure 12: GPU strong scaling for SpTTV and SpMTTKRP, comparing
// SpDISTAL's non-zero-based GPU kernels against SpDISTAL's CPU kernels on
// the same number of nodes. Each cell prints the speedup of the faster
// system over the slower (positive = GPU wins), matching the paper's
// presentation.
#include "bench_util.h"

namespace spdbench {

void fig12(base::KernelKind kind) {
  const auto& datasets = data::tensor_datasets();
  const std::vector<int> gpu_counts = {4, 8, 16};
  print_header(strprintf(
      "Figure 12: GPU %s (nz) vs CPU (row) — speedup of the faster system",
      base::kernel_kind_name(kind)));
  std::printf("%-18s", "tensor");
  for (int g : gpu_counts) std::printf(" %11dG", g);
  std::printf("\n");
  print_rule(78);
  for (const auto& ds : datasets) {
    const fmt::Coo coo = ds.make();
    std::printf("%-18s", ds.name.c_str());
    for (int g : gpu_counts) {
      const int nodes = (g + 3) / 4;
      Result gpu = run_spdistal(kind, coo, /*nz=*/true,
                                make_machine(nodes, rt::ProcKind::GPU, g));
      Result cpu = run_spdistal(kind, coo, /*nz=*/false,
                                make_machine(nodes, rt::ProcKind::CPU,
                                             nodes));
      if (!gpu.ok() && !cpu.ok()) {
        std::printf(" %12s", "DNC");
      } else if (!gpu.ok()) {
        std::printf(" %12s", "GPU-DNC");
      } else if (!cpu.ok()) {
        std::printf(" %12s", "CPU-DNC");
      } else if (gpu.seconds <= cpu.seconds) {
        std::printf("  GPU %6.2fx", cpu.seconds / gpu.seconds);
      } else {
        std::printf("  CPU %6.2fx", gpu.seconds / cpu.seconds);
      }
    }
    std::printf("\n");
  }
}

}  // namespace spdbench

int main() {
  spdbench::fig12(spdbench::base::KernelKind::SpTTV);
  spdbench::fig12(spdbench::base::KernelKind::SpMTTKRP);
  return 0;
}
