// Figure 13: SpMV weak scaling on synthetic banded matrices, 1-64 nodes
// (4-256 GPUs), ~700M-scaled non-zeros per node, SpDISTAL vs PETSc on both
// CPUs and GPUs. The metric is throughput per node (iterations/second),
// flat = perfect weak scaling.
#include "bench_util.h"

int main() {
  using namespace spdbench;
  using base::KernelKind;
  // 700M paper non-zeros per node, scaled.
  const int64_t nnz_per_node =
      static_cast<int64_t>(7.0e8 / data::kScaleFactor);
  const int band = 27;
  const std::vector<int> node_counts = {1, 2, 4, 8, 16, 32, 64};

  print_header("Figure 13: SpMV weak scaling on synthetic banded matrices "
               "(throughput/node = iterations/second)");
  std::printf("%-14s %10s %10s %12s %12s\n", "nodes (GPUs)", "SpDISTAL",
              "PETSc", "SpDISTAL-GPU", "PETSc-GPU");
  print_rule(78);

  for (int nodes : node_counts) {
    const rt::Coord n = nnz_per_node * nodes / band;
    const fmt::Coo coo = data::banded_matrix(n, band, 77);
    // The paper sizes the GPU problem at 700M non-zeros per *GPU*.
    const rt::Coord ng = nnz_per_node * nodes * 4 / band;
    const fmt::Coo coo_gpu = data::banded_matrix(ng, band, 78);
    auto tput = [&](const Result& r) {
      return r.ok() ? strprintf("%10.2f", 1.0 / r.seconds)
                    : strprintf("%10s", cell(r).c_str());
    };
    Result cpu = run_spdistal(KernelKind::SpMV, coo, false,
                              make_machine(nodes, rt::ProcKind::CPU, nodes));
    Result pet = run_petsc(KernelKind::SpMV, coo,
                           make_machine(nodes, rt::ProcKind::CPU, nodes));
    Result gpu =
        run_spdistal(KernelKind::SpMV, coo_gpu, false,
                     make_machine(nodes, rt::ProcKind::GPU, 4 * nodes));
    Result pet_gpu = run_petsc(KernelKind::SpMV, coo_gpu,
                               make_machine(nodes, rt::ProcKind::GPU,
                                            4 * nodes));
    std::printf("%3d (%4d)     %s %s   %s   %s\n", nodes, 4 * nodes,
                tput(cpu).c_str(), tput(pet).c_str(), tput(gpu).c_str(),
                tput(pet_gpu).c_str());
  }
  return 0;
}
