// Table II: the tensors and matrices of the evaluation. Prints the paper's
// inventory next to the synthetic stand-ins actually generated (scaled by
// data::kScaleFactor), with their realized dimensions and non-zero counts.
#include "bench_util.h"

int main() {
  using namespace spdbench;
  print_header("Table II: tensors and matrices (synthetic equivalents, "
               "scale 1/" +
               strprintf("%.0f", data::kScaleFactor) + ")");
  std::printf("%-18s %-18s %9s | %11s %-22s\n", "Tensor", "Domain",
              "paper nnz", "scaled nnz", "dims");
  print_rule(78);
  auto show = [](const data::DatasetInfo& d) {
    fmt::Coo coo = d.make();
    std::vector<std::string> ds;
    for (auto x : coo.dims) ds.push_back(strprintf("%lld", (long long)x));
    std::printf("%-18s %-18s %9.2e | %11lld %-22s\n", d.name.c_str(),
                d.domain.c_str(), d.paper_nnz,
                static_cast<long long>(coo.nnz()),
                join(ds, "x").c_str());
  };
  for (const auto& d : data::matrix_datasets()) show(d);
  print_rule(78);
  for (const auto& d : data::tensor_datasets()) show(d);
  return 0;
}
