#include "bench_util.h"

#include <algorithm>

#include "autosched/autosched.h"
#include "obs/obs.h"
#include "obs/persist.h"

namespace spdbench {

using base::KernelKind;
using rt::Coord;

std::string obs_summary(const rt::SimReport& rep) {
  const int64_t lookups = rep.plan_hits + rep.plan_misses;
  if (lookups == 0 && rep.kernels.empty()) return "";
  std::string out = strprintf(
      "[obs] plan hit-rate %.1f%% (%lld/%lld)",
      lookups > 0 ? 100.0 * static_cast<double>(rep.plan_hits) /
                        static_cast<double>(lookups)
                  : 0.0,
      static_cast<long long>(rep.plan_hits),
      static_cast<long long>(lookups));
  // Top-3 kernels by simulated busy time.
  std::vector<std::pair<std::string, obs::KernelStats>> rows(
      rep.kernels.begin(), rep.kernels.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.busy_s > b.second.busy_s;
  });
  if (rows.size() > 3) rows.resize(3);
  for (const auto& [name, ks] : rows) {
    out += strprintf(" | %s: %lld tasks, %s busy", name.c_str(),
                     static_cast<long long>(ks.tasks),
                     human_seconds(ks.busy_s).c_str());
  }
  return out;
}

std::string calib_summary(const rt::SimReport& rep,
                          const rt::Machine& machine) {
  if (!obs::calibration_enabled() || rep.kernels.empty()) return "";
  const obs::Calibration& c = obs::Calibration::global();
  const rt::Proc p0 = machine.proc(0);
  const char* kind = rt::proc_kind_name(p0.kind);
  const double static_flop = 1.0 / machine.proc_flops(p0, 1);
  const double static_byte = 1.0 / machine.proc_mem_bw(p0, 1);
  std::string out;
  for (const auto& [name, ks] : rep.kernels) {
    const auto r = c.lookup(name, kind);
    if (!r.has_value()) continue;
    out += strprintf("%s %s:", out.empty() ? "" : " |", name.c_str());
    if (r->wall_per_flop > 0) {
      out += strprintf(" %.2e s/flop (%+.0f%% vs static)", r->wall_per_flop,
                       100.0 * (r->wall_per_flop - static_flop) / static_flop);
    }
    if (r->wall_per_byte > 0) {
      out += strprintf(" %.2e s/B (%+.0f%%)", r->wall_per_byte,
                       100.0 * (r->wall_per_byte - static_byte) / static_byte);
    }
    out += strprintf(", %llu samples",
                     static_cast<unsigned long long>(r->samples));
  }
  if (out.empty()) return "";
  return "[calib]" + out;
}

std::string plan_summary() {
  autosched::PlanCache& cache = autosched::PlanCache::global();
  const int64_t exact = cache.hits();
  const int64_t fuzzy = cache.fuzzy_hits();
  const int64_t misses = cache.misses();
  const int64_t lookups = exact + fuzzy + misses;
  if (lookups == 0) return "";
  std::string out = strprintf(
      "[plan] cache %.1f%% (%lld exact + %lld fuzzy / %lld lookups)",
      100.0 * static_cast<double>(exact + fuzzy) /
          static_cast<double>(lookups),
      static_cast<long long>(exact), static_cast<long long>(fuzzy),
      static_cast<long long>(lookups));
  if (cache.loaded() > 0) {
    out += strprintf(" | store: %lld loaded",
                     static_cast<long long>(cache.loaded()));
  }
  out += strprintf(" | searches: %lld cold, %lld warm",
                   static_cast<long long>(misses),
                   static_cast<long long>(exact + fuzzy));
  return out;
}

namespace {

void maybe_print_obs(const rt::SimReport& rep, const rt::Machine& machine) {
  if (obs::enabled()) {
    const std::string line = obs_summary(rep);
    if (!line.empty()) std::printf("%s\n", line.c_str());
  }
  const std::string calib = calib_summary(rep, machine);
  if (!calib.empty()) std::printf("%s\n", calib.c_str());
  const std::string plan = plan_summary();
  if (!plan.empty()) std::printf("%s\n", plan.c_str());
}

}  // namespace

rt::Machine make_machine(int nodes, rt::ProcKind kind, int grid_size) {
  rt::MachineConfig cfg = data::paper_machine_config(nodes);
  return rt::Machine(cfg, rt::Grid(grid_size), kind);
}

Built build_kernel(KernelKind kind, const fmt::Coo& coo, bool nz,
                   int pieces) {
  Built b;
  IndexVar i("i"), j("j"), k("k"), l("l");
  IndexVar io("io"), ii("ii"), f("f"), g("g"), fo("fo"), fi("fi");
  const auto& dims = coo.dims;
  const std::string row2 = "T(x, y) -> M(x)";
  const std::string row1 = "T(x) -> M(x)";
  const std::string repl1 = "T(x) -> M(q)";
  const std::string repl2 = "T(x, y) -> M(q)";
  const std::string nz2 = "T(x, y) fuse(x, y -> g) -> M(~g)";
  const std::string row3 = "T(x, y, z) -> M(x)";
  const std::string nz3 =
      "T(x, y, z) fuse(x, y -> g) fuse(g, z -> h) -> M(~h)";
  // Note: the TDN parser treats fuse clauses left to right, so nz3 fuses all
  // three dimensions before the ~ partition (Figure 5's x y z -> f case).

  switch (kind) {
    case KernelKind::SpMV: {
      Tensor a("a", {dims[0]}, fmt::dense_vector(),
               tdn::parse_tdn(nz ? repl1 : row1));
      Tensor B("B", dims, fmt::csr(), tdn::parse_tdn(nz ? nz2 : row2));
      Tensor c("c", {dims[1]}, fmt::dense_vector(), tdn::parse_tdn(repl1));
      B.from_coo(coo);
      c.init_dense([](const auto& x) {
        return 1.0 + 0.01 * static_cast<double>(x[0] % 97);
      });
      b.stmt = &(a(i) = B(i, j) * c(j));
      if (nz) {
        a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, pieces, "B")
            .distribute(fo)
            .parallelize(fi, sched::ParallelUnit::CPUThread);
      } else {
        a.schedule().divide(i, io, ii, pieces).distribute(io)
            .communicate({"a", "B", "c"}, io)
            .parallelize(ii, sched::ParallelUnit::CPUThread);
      }
      b.out = a;
      return b;
    }
    case KernelKind::SpMM: {
      Tensor A("A", {dims[0], kSpmmJ}, fmt::dense_matrix(),
               tdn::parse_tdn(nz ? repl2 : row2));
      Tensor B("B", dims, fmt::csr(), tdn::parse_tdn(nz ? nz2 : row2));
      Tensor C("C", {dims[1], kSpmmJ}, fmt::dense_matrix(),
               tdn::parse_tdn(repl2));
      B.from_coo(coo);
      C.init_dense([](const auto& x) {
        return 0.5 + 0.01 * static_cast<double>((x[0] * 3 + x[1]) % 53);
      });
      b.stmt = &(A(i, j) = B(i, k) * C(k, j));
      if (nz) {
        A.schedule().fuse(i, k, f).divide_pos(f, fo, fi, pieces, "B")
            .distribute(fo)
            .parallelize(fi, sched::ParallelUnit::CPUThread);
      } else {
        A.schedule().divide(i, io, ii, pieces).distribute(io)
            .communicate({"A", "B", "C"}, io)
            .parallelize(ii, sched::ParallelUnit::CPUThread);
      }
      b.out = A;
      return b;
    }
    case KernelKind::SpAdd3: {
      SPD_CHECK(!nz, ScheduleError,
                "SpAdd3 is incompatible with non-zero distribution");
      Tensor A("A", dims, fmt::csr(), tdn::parse_tdn(row2));
      Tensor B("B", dims, fmt::csr(), tdn::parse_tdn(row2));
      Tensor C("C", dims, fmt::csr(), tdn::parse_tdn(row2));
      Tensor D("D", dims, fmt::csr(), tdn::parse_tdn(row2));
      B.from_coo(coo);
      C.from_coo(data::shift_last_dim(coo, 1 % dims[1]));
      D.from_coo(data::shift_last_dim(coo, 2 % dims[1]));
      b.stmt = &(A(i, j) = B(i, j) + C(i, j) + D(i, j));
      A.schedule().divide(i, io, ii, pieces).distribute(io)
          .parallelize(ii, sched::ParallelUnit::CPUThread);
      b.out = A;
      return b;
    }
    case KernelKind::SDDMM: {
      Tensor A("A", dims, fmt::csr());
      Tensor B("B", dims, fmt::csr(), tdn::parse_tdn(nz ? nz2 : row2));
      Tensor C("C", {dims[0], kSddmmK}, fmt::dense_matrix(),
               tdn::parse_tdn(repl2));
      Tensor D("D", {kSddmmK, dims[1]}, fmt::dense_matrix(),
               tdn::parse_tdn(repl2));
      B.from_coo(coo);
      C.init_dense([](const auto& x) {
        return 1.0 + 0.02 * static_cast<double>((x[0] + x[1]) % 31);
      });
      D.init_dense([](const auto& x) {
        return 0.5 - 0.02 * static_cast<double>((x[0] * 2 + x[1]) % 29);
      });
      b.stmt = &(A(i, j) = B(i, j) * C(i, k) * D(k, j));
      if (nz) {
        A.schedule().fuse(i, j, f).divide_pos(f, fo, fi, pieces, "B")
            .distribute(fo)
            .parallelize(fi, sched::ParallelUnit::CPUThread);
      } else {
        A.schedule().divide(i, io, ii, pieces).distribute(io)
            .parallelize(ii, sched::ParallelUnit::CPUThread);
      }
      b.out = A;
      return b;
    }
    case KernelKind::SpTTV: {
      // patents-style tensors have small, dense leading modes: store them
      // {Dense, Dense, Compressed} as in the paper's methodology.
      const bool patents_like =
          coo.dims[0] * coo.dims[1] <= static_cast<Coord>(coo.nnz());
      const fmt::Format bfmt = patents_like ? fmt::ddc3() : fmt::csf3();
      Tensor A("A", {dims[0], dims[1]}, fmt::csr());
      Tensor B("B", dims, bfmt, tdn::parse_tdn(nz ? nz3 : row3));
      Tensor c("c", {dims[2]}, fmt::dense_vector(), tdn::parse_tdn(repl1));
      B.from_coo(coo);
      c.init_dense([](const auto& x) {
        return 1.0 + 0.01 * static_cast<double>(x[0] % 89);
      });
      b.stmt = &(A(i, j) = B(i, j, k) * c(k));
      if (nz) {
        A.schedule().fuse(i, j, f).fuse(f, k, g)
            .divide_pos(g, fo, fi, pieces, "B").distribute(fo)
            .parallelize(fi, sched::ParallelUnit::CPUThread);
      } else {
        A.schedule().divide(i, io, ii, pieces).distribute(io)
            .parallelize(ii, sched::ParallelUnit::CPUThread);
      }
      b.out = A;
      return b;
    }
    case KernelKind::SpMTTKRP: {
      const bool patents_like =
          coo.dims[0] * coo.dims[1] <= static_cast<Coord>(coo.nnz());
      const fmt::Format bfmt = patents_like ? fmt::ddc3() : fmt::csf3();
      Tensor A("A", {dims[0], kRank}, fmt::dense_matrix(),
               tdn::parse_tdn(nz ? repl2 : row2));
      Tensor B("B", dims, bfmt, tdn::parse_tdn(nz ? nz3 : row3));
      Tensor C("C", {dims[1], kRank}, fmt::dense_matrix(),
               tdn::parse_tdn(repl2));
      Tensor D("D", {dims[2], kRank}, fmt::dense_matrix(),
               tdn::parse_tdn(repl2));
      B.from_coo(coo);
      C.init_dense([](const auto& x) {
        return 0.5 + 0.01 * static_cast<double>((x[0] + 2 * x[1]) % 41);
      });
      D.init_dense([](const auto& x) {
        return 1.0 - 0.01 * static_cast<double>((2 * x[0] + x[1]) % 37);
      });
      b.stmt = &(A(i, l) = B(i, j, k) * C(j, l) * D(k, l));
      if (nz) {
        A.schedule().fuse(i, j, f).fuse(f, k, g)
            .divide_pos(g, fo, fi, pieces, "B").distribute(fo)
            .parallelize(fi, sched::ParallelUnit::CPUThread);
      } else {
        A.schedule().divide(i, io, ii, pieces).distribute(io)
            .parallelize(ii, sched::ParallelUnit::CPUThread);
      }
      b.out = A;
      return b;
    }
    case KernelKind::Other:
      SPD_ASSERT(false, "build_kernel(Other)");
  }
  return b;
}

Result run_spdistal(KernelKind kind, const fmt::Coo& coo, bool nz,
                    const rt::Machine& machine) {
  Result r;
  try {
    Built b = build_kernel(kind, coo, nz, machine.num_procs());
    rt::Runtime runtime(machine);
    auto inst =
        comp::CompiledKernel::compile(*b.stmt, machine).instantiate(runtime);
    inst->run(kWarmIters);
    runtime.reset_timing();
    inst->run(kTimedIters);
    const rt::SimReport rep = inst->report();
    r.seconds = rep.sim_time / kTimedIters;
    maybe_print_obs(rep, machine);
  } catch (const OutOfMemoryError& e) {
    r.dnc = true;
    r.note = e.what();
  } catch (const SpdError& e) {
    r.unsupported = true;
    r.note = e.what();
  }
  return r;
}

Result run_spdistal_autosched(KernelKind kind, const fmt::Coo& coo,
                              const rt::Machine& machine) {
  Result r;
  try {
    Built b = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
    b.out.schedule() = sched::Schedule{};  // wipe the hand-written schedule
    autosched::Result searched =
        autosched::autoschedule_search(*b.stmt, machine);
    r.note = searched.summary();
    rt::Runtime runtime(machine);
    auto inst = comp::CompiledKernel::compile(*b.stmt, searched.schedule,
                                              machine)
                    .instantiate(runtime);
    inst->run(kWarmIters);
    runtime.reset_timing();
    inst->run(kTimedIters);
    const rt::SimReport rep = inst->report();
    r.seconds = rep.sim_time / kTimedIters;
    maybe_print_obs(rep, machine);
  } catch (const OutOfMemoryError& e) {
    r.dnc = true;
    r.note = e.what();
  } catch (const SpdError& e) {
    r.unsupported = true;
    r.note = e.what();
  }
  return r;
}

Result run_spdistal_spmm_batched(const fmt::Coo& coo,
                                 const rt::Machine& machine) {
  // Row-distributed SpMM whose dense operand C is partitioned by columns
  // and cycled between devices in rounds: each device holds two C chunks at
  // a time (current + staging) instead of a full replica, paying (P-1)/P of
  // C in ring traffic per iteration.
  Result r;
  try {
    const int pieces = machine.num_procs();
    Built b = build_kernel(KernelKind::SpMM, coo, /*nz=*/false, pieces);
    // Replace C's replicated distribution with a column partition.
    Tensor C = b.stmt->tensor("C");
    C.set_distribution(tdn::parse_tdn("C(x, y) -> M(y)"));
    rt::Runtime runtime(machine);
    auto inst =
        comp::CompiledKernel::compile(*b.stmt, machine).instantiate(runtime);
    // Staging chunk per device on top of the owned chunk.
    const double c_bytes =
        static_cast<double>(C.storage().vals()->size_bytes());
    for (int p = 0; p < pieces; ++p) {
      runtime.mems()
          .pool(machine.proc_mem(machine.proc(p)))
          .allocate(c_bytes / pieces, "C staging chunk");
    }
    auto ring = [&]() {
      for (int p = 0; p < pieces; ++p) {
        const rt::Proc dst = machine.proc(p);
        const rt::Proc src = machine.proc((p + 1) % pieces);
        // P-1 ring rounds, each moving one chunk.
        for (int round = 1; round < pieces; ++round) {
          runtime.charge_transfer(machine.proc_mem(src),
                                  machine.proc_mem(dst), c_bytes / pieces);
        }
      }
    };
    inst->run(kWarmIters);
    ring();
    runtime.reset_timing();
    for (int it = 0; it < kTimedIters; ++it) {
      inst->run(1);
      ring();
    }
    r.seconds = inst->report().sim_time / kTimedIters;
  } catch (const OutOfMemoryError& e) {
    r.dnc = true;
    r.note = e.what();
  } catch (const SpdError& e) {
    r.unsupported = true;
    r.note = e.what();
  }
  return r;
}

namespace {
template <typename System>
Result run_library(System&& system, KernelKind kind, const fmt::Coo& coo,
                   const rt::Machine& machine) {
  Result r;
  try {
    Built b = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
    r.seconds = system.run(*b.stmt, kWarmIters, kTimedIters);
  } catch (const OutOfMemoryError& e) {
    r.dnc = true;
    r.note = e.what();
  } catch (const SpdError& e) {
    r.unsupported = true;
    r.note = e.what();
  }
  return r;
}
}  // namespace

Result run_petsc(KernelKind kind, const fmt::Coo& coo,
                 const rt::Machine& machine) {
  return run_library(base::make_petsc_like(machine), kind, coo, machine);
}

Result run_trilinos(KernelKind kind, const fmt::Coo& coo,
                    const rt::Machine& machine) {
  return run_library(base::make_trilinos_like(machine), kind, coo, machine);
}

Result run_ctf(KernelKind kind, const fmt::Coo& coo,
               const rt::Machine& machine) {
  Result r;
  try {
    Built b = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
    base::CtfLike ctf(machine);
    r.seconds = ctf.run(*b.stmt, kWarmIters, kTimedIters);
  } catch (const OutOfMemoryError& e) {
    r.dnc = true;
    r.note = e.what();
  } catch (const SpdError& e) {
    r.unsupported = true;
    r.note = e.what();
  }
  return r;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double logsum = 0;
  for (double x : xs) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(xs.size()));
}

bool write_bench_json(const std::string& path,
                      const std::vector<BenchRow>& rows) {
  auto escaped = [](const std::string& s) {
    std::string out;
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    return out;
  };
  std::string out = "{\n  \"version\": 1,\n  \"benchmarks\": [";
  bool first = true;
  for (const BenchRow& r : rows) {
    out += first ? "\n" : ",\n";
    first = false;
    out += strprintf(
        "    {\"name\": \"%s\", \"ns_per_op\": %.17g, "
        "\"items_per_s\": %.17g, \"bytes_per_s\": %.17g}",
        escaped(r.name).c_str(), r.ns_per_op, r.items_per_s, r.bytes_per_s);
  }
  out += "\n  ]\n}\n";
  return obs::write_text_file_atomic(path, out);
}

std::string cell(const Result& r) {
  if (r.dnc) return "DNC";
  if (r.unsupported) return "n/a";
  return strprintf("%.2f", r.seconds * 1e3);
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

void print_header(const std::string& title) {
  std::printf("\n");
  print_rule(78);
  std::printf("%s\n", title.c_str());
  print_rule(78);
}

}  // namespace spdbench
