// Ablation (paper §II-B/§II-D): universe vs non-zero vs fused non-zero
// partitioning across increasingly skewed matrices. Reports per-strategy
// simulated time, processor load imbalance, and steady-state communication,
// exposing the trade-off the paper describes: non-zero partitions buy load
// balance at the cost of reduction communication.
#include "bench_util.h"

int main() {
  using namespace spdbench;
  using base::KernelKind;
  const int nodes = 8;
  print_header("Ablation: SpMV partitioning strategy vs row-degree skew "
               "(8 nodes)");
  std::printf("%-8s %-12s %12s %12s %14s\n", "skew", "strategy", "ms/iter",
              "imbalance", "comm KB/iter");
  print_rule(78);
  for (double skew : {0.4, 0.9, 1.2, 1.5}) {
    const fmt::Coo coo = data::powerlaw_matrix(40000, 40000, 600000, skew, 5);
    for (bool nz : {false, true}) {
      Built b = build_kernel(KernelKind::SpMV, coo, nz, nodes);
      rt::Machine m = make_machine(nodes, rt::ProcKind::CPU, nodes);
      rt::Runtime runtime(m);
      auto inst =
          comp::CompiledKernel::compile(*b.stmt, m).instantiate(runtime);
      inst->run(kWarmIters);
      runtime.reset_timing();
      inst->run(kTimedIters);
      const rt::SimReport rep = inst->report();
      std::printf("%-8.1f %-12s %12.2f %12.2f %14.1f\n", skew,
                  nz ? "nonzero(~f)" : "universe",
                  rep.sim_time / kTimedIters * 1e3, rep.imbalance,
                  rep.inter_node_bytes / kTimedIters / 1024.0);
    }
  }
  std::printf(
      "\nExpected shape: universe imbalance grows with skew while the fused\n"
      "non-zero partition stays near 1.0 at a small constant communication\n"
      "cost (the reduction of overlapping output rows).\n");
  return 0;
}
