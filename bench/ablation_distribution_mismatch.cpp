// Ablation (paper §II-D, last paragraph): a SpDISTAL program may pair a
// row-based computation distribution with a non-zero-based data
// distribution. It stays correct but pays reshaping communication to move
// the data into the computation's layout. The runtime caches the reshaped
// instances, so the cost appears on the first iteration after a data
// (re)distribution — exactly Legion's behavior.
//
// The workload clusters its hub rows (10% of rows hold ~2/3 of non-zeros at
// the front of the index space) so the non-zero split genuinely disagrees
// with the row split.
#include "bench_util.h"
#include "common/rng.h"

int main() {
  using namespace spdbench;
  print_header("Ablation: matched vs mismatched data/computation "
               "distributions (SpMV, row-based compute)");
  std::printf("%-8s %-14s %16s %16s %14s\n", "nodes", "B distribution",
              "reshape ms", "steady ms/iter", "reshape KB");
  print_rule(78);
  // Clustered hubs: rows 0..n/10 hold two thirds of all non-zeros.
  fmt::Coo coo;
  coo.dims = {30000, 30000};
  {
    Rng rng(1234);
    for (int64_t e = 0; e < 260000; ++e) {
      coo.push({rng.next_range(0, 2999), rng.next_range(0, 29999)},
               rng.next_double(0.1, 1.0));
    }
    for (int64_t e = 0; e < 140000; ++e) {
      coo.push({rng.next_range(3000, 29999), rng.next_range(0, 29999)},
               rng.next_double(0.1, 1.0));
    }
    coo.sort_and_combine({0, 1});
  }
  for (int nodes : {2, 4, 8, 16}) {
    for (bool matched : {true, false}) {
      IndexVar i("i"), j("j"), io("io"), ii("ii");
      Tensor a("a", {coo.dims[0]}, fmt::dense_vector(),
               tdn::parse_tdn("a(x) -> M(x)"));
      Tensor B("B", coo.dims, fmt::csr(),
               tdn::parse_tdn(matched
                                  ? "B(x, y) -> M(x)"
                                  : "B(x, y) fuse(x, y -> f) -> M(~f)"));
      Tensor c("c", {coo.dims[1]}, fmt::dense_vector(),
               tdn::parse_tdn("c(x) -> M(q)"));
      B.from_coo(coo);
      c.init_dense([](const auto&) { return 1.0; });
      Statement& stmt = (a(i) = B(i, j) * c(j));
      a.schedule().divide(i, io, ii, nodes).distribute(io).parallelize(
          ii, sched::ParallelUnit::CPUThread);
      rt::Machine m = make_machine(nodes, rt::ProcKind::CPU, nodes);
      rt::Runtime runtime(m);
      auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
      runtime.reset_timing();
      inst->run(1);  // first iteration: pays the reshape
      const rt::SimReport first = inst->report();
      runtime.reset_timing();
      inst->run(kTimedIters);  // steady state: instances cached
      const rt::SimReport steady = inst->report();
      std::printf("%-8d %-14s %16.2f %16.2f %14.1f\n", nodes,
                  matched ? "row (matched)" : "nz (mismatch)",
                  first.sim_time * 1e3,
                  steady.sim_time / kTimedIters * 1e3,
                  first.inter_node_bytes / 1024.0);
    }
  }
  return 0;
}
