// google-benchmark microbenchmarks for the runtime substrate: direct and
// dependent partitioning (the operations SpDISTAL's generated code performs
// at instance setup), packing, subset algebra, and the deferred executor's
// wall-clock scaling (point tasks of a launch retiring concurrently on the
// worker pool while simulated accounting replays serially).
#include <benchmark/benchmark.h>

#include "compiler/lower.h"
#include "data/generators.h"
#include "format/storage.h"
#include "runtime/partition.h"
#include "tensor/tensor.h"

namespace {

using namespace spdistal;
using rt::Coord;

fmt::TensorStorage make_csr(int64_t nnz) {
  fmt::Coo coo = data::powerlaw_matrix(nnz / 12, nnz / 12, nnz, 1.1, 3);
  // Copy dims before passing coo by value: argument evaluation order is
  // unspecified, so reading coo.dims in the same call is a hazard.
  const std::vector<rt::Coord> dims = coo.dims;
  return fmt::pack("B", fmt::csr(), dims, std::move(coo));
}

void BM_PackCsr(benchmark::State& state) {
  fmt::Coo coo = data::powerlaw_matrix(state.range(0) / 12,
                                       state.range(0) / 12, state.range(0),
                                       1.1, 3);
  for (auto _ : state) {
    auto st = fmt::pack("B", fmt::csr(), coo.dims, coo);
    benchmark::DoNotOptimize(st.nnz());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackCsr)->Arg(10000)->Arg(100000);

void BM_PartitionEqual(benchmark::State& state) {
  rt::IndexSpace space(1 << 20);
  for (auto _ : state) {
    auto p = rt::partition_equal(space, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.num_colors());
  }
}
BENCHMARK(BM_PartitionEqual)->Arg(16)->Arg(256);

void BM_Image(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  rt::Partition rows = rt::partition_equal(level.pos->space(), 16);
  for (auto _ : state) {
    auto p = rt::image(*level.pos, rows,
                       rt::IndexSpace(level.positions));
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_Image)->Arg(10000)->Arg(100000);

void BM_Preimage(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  rt::Partition nz = rt::partition_equal(rt::IndexSpace(level.positions), 16);
  for (auto _ : state) {
    auto p = rt::preimage(*level.pos, nz);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_Preimage)->Arg(10000)->Arg(100000);

void BM_PartitionByValueRanges(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  std::vector<rt::Rect1> ranges;
  const Coord m = st.dims()[1];
  for (int c = 0; c < 16; ++c) {
    ranges.push_back(rt::Rect1{c * m / 16, (c + 1) * m / 16 - 1});
  }
  for (auto _ : state) {
    auto p = rt::partition_by_value_ranges(*level.crd, ranges);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.nnz());
}
BENCHMARK(BM_PartitionByValueRanges)->Arg(10000)->Arg(100000);

// Guard for the O(nnz log pieces) binary-search path: many sorted-disjoint
// ranges must not reintroduce the O(nnz x pieces) per-color probe (items/s
// should be flat in the piece count, not inversely proportional).
void BM_PartitionByValueRangesManyPieces(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(100000);
  const auto& level = st.level(1);
  const int pieces = static_cast<int>(state.range(0));
  std::vector<rt::Rect1> ranges;
  const Coord m = st.dims()[1];
  for (int c = 0; c < pieces; ++c) {
    ranges.push_back(rt::Rect1{c * m / pieces, (c + 1) * m / pieces - 1});
  }
  for (auto _ : state) {
    auto p = rt::partition_by_value_ranges(*level.crd, ranges);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.nnz());
}
BENCHMARK(BM_PartitionByValueRangesManyPieces)->Arg(16)->Arg(256)->Arg(1024);

// Same guard for preimage's per-entry rect probe (binary search over the
// sorted-disjoint rects of each colored crd subset).
void BM_PreimageManyColors(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(100000);
  const auto& level = st.level(1);
  rt::Partition nz = rt::partition_equal(rt::IndexSpace(level.positions),
                                         static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = rt::preimage(*level.pos, nz);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_PreimageManyColors)->Arg(16)->Arg(256);

// Wall-clock scaling of the deferred executor: an 8-piece row-distributed
// SpMM whose leaves run concurrently on `threads` execution contexts
// (state.range(0)); 1 = the serial fallback (SPDISTAL_EXEC_THREADS=1).
// The simulated SimReport is bit-identical across thread counts; only the
// host wall-clock changes. Expected: >= 2x items/s from 1 -> 4 contexts.
void BM_DeferredSpmmLaunch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPieces = 8;
  constexpr Coord kCols = 32;
  IndexVar i("i"), j("j"), k("k"), io("io"), ii("ii");
  fmt::Coo coo = data::powerlaw_matrix(20000, 20000, 600000, 1.05, 3);
  const std::vector<Coord> dims = coo.dims;
  Tensor A("A", {dims[0], kCols}, fmt::dense_matrix(),
           tdn::parse_tdn("A(x, y) -> M(x)"));
  Tensor B("B", dims, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
  Tensor C("C", {dims[1], kCols}, fmt::dense_matrix(),
           tdn::parse_tdn("C(x, y) -> M(q)"));
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.01 * static_cast<double>((x[0] * 3 + x[1]) % 53);
  });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
  A.schedule().divide(i, io, ii, kPieces).distribute(io);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, threads);
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // warm-up: placement + first-touch communication
  for (auto _ : state) {
    inst->run(1);
  }
  state.SetItemsProcessed(state.iterations() * B.storage().nnz() * kCols);
}
BENCHMARK(BM_DeferredSpmmLaunch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SubsetSubtract(benchmark::State& state) {
  rt::IndexSubset a(1), b(1);
  for (Coord k = 0; k < state.range(0); ++k) {
    a.add(rt::RectN::make1(k * 10, k * 10 + 6));
    b.add(rt::RectN::make1(k * 10 + 3, k * 10 + 8));
  }
  a.normalize();
  b.normalize();
  for (auto _ : state) {
    auto d = a.subtract(b);
    benchmark::DoNotOptimize(d.volume());
  }
}
BENCHMARK(BM_SubsetSubtract)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
