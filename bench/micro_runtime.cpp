// google-benchmark microbenchmarks for the runtime substrate: direct and
// dependent partitioning (the operations SpDISTAL's generated code performs
// at instance setup), packing, subset algebra, and the deferred executor's
// wall-clock scaling (point tasks of a launch retiring concurrently on the
// worker pool while simulated accounting replays serially).
#include <benchmark/benchmark.h>

#include "compiler/lower.h"
#include "data/generators.h"
#include "format/storage.h"
#include "obs/obs.h"
#include "runtime/partition.h"
#include "tensor/tensor.h"
#include "verify/verify.h"

namespace {

using namespace spdistal;
using rt::Coord;

fmt::TensorStorage make_csr(int64_t nnz) {
  fmt::Coo coo = data::powerlaw_matrix(nnz / 12, nnz / 12, nnz, 1.1, 3);
  // Copy dims before passing coo by value: argument evaluation order is
  // unspecified, so reading coo.dims in the same call is a hazard.
  const std::vector<rt::Coord> dims = coo.dims;
  return fmt::pack("B", fmt::csr(), dims, std::move(coo));
}

void BM_PackCsr(benchmark::State& state) {
  fmt::Coo coo = data::powerlaw_matrix(state.range(0) / 12,
                                       state.range(0) / 12, state.range(0),
                                       1.1, 3);
  for (auto _ : state) {
    auto st = fmt::pack("B", fmt::csr(), coo.dims, coo);
    benchmark::DoNotOptimize(st.nnz());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackCsr)->Arg(10000)->Arg(100000);

void BM_PartitionEqual(benchmark::State& state) {
  rt::IndexSpace space(1 << 20);
  for (auto _ : state) {
    auto p = rt::partition_equal(space, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.num_colors());
  }
}
BENCHMARK(BM_PartitionEqual)->Arg(16)->Arg(256);

void BM_Image(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  rt::Partition rows = rt::partition_equal(level.pos->space(), 16);
  for (auto _ : state) {
    auto p = rt::image(*level.pos, rows,
                       rt::IndexSpace(level.positions));
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_Image)->Arg(10000)->Arg(100000);

void BM_Preimage(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  rt::Partition nz = rt::partition_equal(rt::IndexSpace(level.positions), 16);
  for (auto _ : state) {
    auto p = rt::preimage(*level.pos, nz);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_Preimage)->Arg(10000)->Arg(100000);

void BM_PartitionByValueRanges(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(state.range(0));
  const auto& level = st.level(1);
  std::vector<rt::Rect1> ranges;
  const Coord m = st.dims()[1];
  for (int c = 0; c < 16; ++c) {
    ranges.push_back(rt::Rect1{c * m / 16, (c + 1) * m / 16 - 1});
  }
  for (auto _ : state) {
    auto p = rt::partition_by_value_ranges(*level.crd, ranges);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.nnz());
}
BENCHMARK(BM_PartitionByValueRanges)->Arg(10000)->Arg(100000);

// Guard for the O(nnz log pieces) binary-search path: many sorted-disjoint
// ranges must not reintroduce the O(nnz x pieces) per-color probe (items/s
// should be flat in the piece count, not inversely proportional).
void BM_PartitionByValueRangesManyPieces(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(100000);
  const auto& level = st.level(1);
  const int pieces = static_cast<int>(state.range(0));
  std::vector<rt::Rect1> ranges;
  const Coord m = st.dims()[1];
  for (int c = 0; c < pieces; ++c) {
    ranges.push_back(rt::Rect1{c * m / pieces, (c + 1) * m / pieces - 1});
  }
  for (auto _ : state) {
    auto p = rt::partition_by_value_ranges(*level.crd, ranges);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.nnz());
}
BENCHMARK(BM_PartitionByValueRangesManyPieces)->Arg(16)->Arg(256)->Arg(1024);

// Same guard for preimage's per-entry rect probe (binary search over the
// sorted-disjoint rects of each colored crd subset).
void BM_PreimageManyColors(benchmark::State& state) {
  fmt::TensorStorage st = make_csr(100000);
  const auto& level = st.level(1);
  rt::Partition nz = rt::partition_equal(rt::IndexSpace(level.positions),
                                         static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = rt::preimage(*level.pos, nz);
    benchmark::DoNotOptimize(p.num_colors());
  }
  state.SetItemsProcessed(state.iterations() * st.dims()[0]);
}
BENCHMARK(BM_PreimageManyColors)->Arg(16)->Arg(256);

// Wall-clock scaling of the deferred executor: an 8-piece row-distributed
// SpMM whose leaves run concurrently on `threads` execution contexts
// (state.range(0)); 1 = the serial fallback (SPDISTAL_EXEC_THREADS=1).
// The simulated SimReport is bit-identical across thread counts; only the
// host wall-clock changes. Expected: >= 2x items/s from 1 -> 4 contexts.
void BM_DeferredSpmmLaunch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPieces = 8;
  constexpr Coord kCols = 32;
  IndexVar i("i"), j("j"), k("k"), io("io"), ii("ii");
  fmt::Coo coo = data::powerlaw_matrix(20000, 20000, 600000, 1.05, 3);
  const std::vector<Coord> dims = coo.dims;
  Tensor A("A", {dims[0], kCols}, fmt::dense_matrix(),
           tdn::parse_tdn("A(x, y) -> M(x)"));
  Tensor B("B", dims, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
  Tensor C("C", {dims[1], kCols}, fmt::dense_matrix(),
           tdn::parse_tdn("C(x, y) -> M(q)"));
  B.from_coo(std::move(coo));
  C.init_dense([](const auto& x) {
    return 0.5 + 0.01 * static_cast<double>((x[0] * 3 + x[1]) % 53);
  });
  Statement& stmt = (A(i, j) = B(i, k) * C(k, j));
  A.schedule().divide(i, io, ii, kPieces).distribute(io);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, threads);
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // warm-up: placement + first-touch communication
  for (auto _ : state) {
    inst->run(1);
  }
  state.SetItemsProcessed(state.iterations() * B.storage().nnz() * kCols);
}
BENCHMARK(BM_DeferredSpmmLaunch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Steady-state enqueue latency of a reduction-bearing launch: warm (the
// memoized LaunchPlan — enqueue walks the cached plan, zero overlap scans)
// vs cold (memo disabled — full subset capture + O(P^2) analysis per
// enqueue). Arg: 1 = warm, 0 = cold. Only the deferred run_async enqueue is
// timed; the drain happens with the clock paused (exec_threads = 1, so the
// serial pool runs nothing until flush).
void BM_ExecuteSteadyState(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  constexpr int kPieces = 16;
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi");
  fmt::Coo coo = data::powerlaw_matrix(4000, 4000, 120000, 1.1, 7);
  const std::vector<Coord> dims = coo.dims;
  // Non-zero split SpMV: piece boundaries straddle rows, so the output
  // carries overlapping REDUCE subsets — the worst case for the cold
  // path's per-requirement pairwise overlap scans.
  Tensor a("a", {dims[0]}, fmt::dense_vector());
  Tensor B("B", dims, fmt::csr(),
           tdn::parse_tdn("B(x, y) fuse(x, y -> g) -> M(~g)"));
  Tensor c("c", {dims[1]}, fmt::dense_vector(),
           tdn::parse_tdn("c(x) -> M(q)"));
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, kPieces, "B")
      .distribute(fo);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, 1);
  runtime.set_plan_memo(memo);
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // plan build + first-touch communication
  const rt::SimReport warmup = inst->report();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->run_async(1));
    state.PauseTiming();
    runtime.flush();
    state.ResumeTiming();
  }
  const rt::SimReport rep = inst->report();
  if (memo) {
    // Acceptance guard: every measured enqueue must have walked the cached
    // plan — a miss means an overlap scan ran on the steady-state path.
    SPD_ASSERT(rep.plan_misses == warmup.plan_misses,
               "warm BM_ExecuteSteadyState rebuilt a plan ("
                   << warmup.plan_misses << " -> " << rep.plan_misses
                   << " misses)");
  }
  state.counters["plan_hits"] = static_cast<double>(rep.plan_hits);
  state.counters["plan_hit_rate"] =
      static_cast<double>(rep.plan_hits) /
      static_cast<double>(rep.plan_hits + rep.plan_misses);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteSteadyState)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMicrosecond);

// Observability overhead guard: the warm enqueue path of
// BM_ExecuteSteadyState with observability forced off (Arg 0) vs on with
// live trace capture (Arg 1). The disabled mode asserts that nothing was
// recorded — the "near-zero overhead when SPDISTAL_OBS=0" contract; compare
// the two rows to read the enabled-mode cost directly.
void BM_TraceOverhead(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  constexpr int kPieces = 16;
  IndexVar i("i"), j("j"), f("f"), fo("fo"), fi("fi");
  fmt::Coo coo = data::powerlaw_matrix(4000, 4000, 120000, 1.1, 7);
  const std::vector<Coord> dims = coo.dims;
  Tensor a("a", {dims[0]}, fmt::dense_vector());
  Tensor B("B", dims, fmt::csr(),
           tdn::parse_tdn("B(x, y) fuse(x, y -> g) -> M(~g)"));
  Tensor c("c", {dims[1]}, fmt::dense_vector(),
           tdn::parse_tdn("c(x) -> M(q)"));
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().fuse(i, j, f).divide_pos(f, fo, fi, kPieces, "B")
      .distribute(fo);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, 1);
  obs::set_enabled(obs_on);
  obs::TraceRecorder::global().start();  // clears any prior capture
  if (!obs_on) obs::TraceRecorder::global().stop();
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // plan build + first-touch communication
  const size_t events_before = obs::TraceRecorder::global().events();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->run_async(1));
    state.PauseTiming();
    runtime.flush();
    state.ResumeTiming();
  }
  const size_t events = obs::TraceRecorder::global().events();
  if (obs_on) {
    SPD_ASSERT(events > events_before,
               "BM_TraceOverhead(on) recorded no trace events");
    obs::TraceRecorder::global().stop();
  } else {
    // Disabled-mode contract: no events recorded at all.
    SPD_ASSERT(events == 0 && events_before == 0,
               "BM_TraceOverhead(off) recorded " << events
                                                 << " trace events");
  }
  obs::set_enabled(false);
  state.counters["trace_events"] = static_cast<double>(events);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Verify-mode cost, and the zero-overhead contract when off: with the
// verifiers disabled the accessor fast path pays one relaxed load and the
// checkers record nothing; with them armed every warm launch re-runs the
// O(P^2) race audit and every point task logs its touched bounds.
void BM_VerifyOverhead(benchmark::State& state) {
  const bool verify_on = state.range(0) != 0;
  constexpr int kPieces = 16;
  IndexVar i("i"), j("j"), io("io"), ii("ii");
  fmt::Coo coo = data::powerlaw_matrix(4000, 4000, 120000, 1.1, 9);
  const std::vector<Coord> dims = coo.dims;
  Tensor a("a", {dims[0]}, fmt::dense_vector());
  Tensor B("B", dims, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
  Tensor c("c", {dims[1]}, fmt::dense_vector(),
           tdn::parse_tdn("c(x) -> M(q)"));
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().divide(i, io, ii, kPieces).distribute(io);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, 1);
  const bool verify_prev = verify::enabled();
  verify::set_enabled(verify_on);
  runtime.set_verify(verify_on);
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // plan build + first-touch communication
  const verify::Stats before = verify::stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->run_async(1));
    state.PauseTiming();
    runtime.flush();
    state.ResumeTiming();
  }
  const verify::Stats after = verify::stats();
  if (verify_on) {
    SPD_ASSERT(after.plans_checked > before.plans_checked &&
                   after.tasks_checked > before.tasks_checked,
               "BM_VerifyOverhead(on) audited nothing");
    SPD_ASSERT(after.violations == before.violations,
               "BM_VerifyOverhead(on) flagged a clean kernel");
  } else {
    // Disabled-mode contract: the checkers never run.
    SPD_ASSERT(after.plans_checked == before.plans_checked &&
                   after.tasks_checked == before.tasks_checked,
               "BM_VerifyOverhead(off) ran "
                   << (after.plans_checked - before.plans_checked)
                   << " plan audits");
  }
  verify::set_enabled(verify_prev);
  state.counters["plans_checked"] =
      static_cast<double>(after.plans_checked - before.plans_checked);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VerifyOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Profile-guided calibration cost, and the off-mode contract: with
// calibration enabled (SPDISTAL_CALIB) every leaf body is wall-clock timed
// and feeds the EWMA rate store; with it disabled record() never runs and
// the leaf path pays exactly one relaxed load to find that out.
void BM_CalibOverhead(benchmark::State& state) {
  const bool calib_on = state.range(0) != 0;
  constexpr int kPieces = 16;
  IndexVar i("i"), j("j"), io("io"), ii("ii");
  fmt::Coo coo = data::powerlaw_matrix(4000, 4000, 120000, 1.1, 11);
  const std::vector<Coord> dims = coo.dims;
  Tensor a("a", {dims[0]}, fmt::dense_vector());
  Tensor B("B", dims, fmt::csr(), tdn::parse_tdn("B(x, y) -> M(x)"));
  Tensor c("c", {dims[1]}, fmt::dense_vector(),
           tdn::parse_tdn("c(x) -> M(q)"));
  B.from_coo(std::move(coo));
  c.init_dense([](const auto& x) {
    return 1.0 + 0.01 * static_cast<double>(x[0] % 17);
  });
  Statement& stmt = (a(i) = B(i, j) * c(j));
  a.schedule().divide(i, io, ii, kPieces).distribute(io);

  rt::MachineConfig cfg;
  cfg.nodes = kPieces;
  rt::Machine m(cfg, rt::Grid(kPieces), rt::ProcKind::CPU);
  rt::Runtime runtime(m, 1);
  const bool calib_prev = obs::calibration_enabled();
  obs::set_calibration(calib_on);
  obs::Calibration::global().clear();
  auto inst = comp::CompiledKernel::compile(stmt, m).instantiate(runtime);
  inst->run(1);  // plan build + first-touch communication
  const uint64_t samples_before = obs::Calibration::global().total_samples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->run_async(1));
    state.PauseTiming();
    runtime.flush();
    state.ResumeTiming();
  }
  const uint64_t samples = obs::Calibration::global().total_samples();
  if (calib_on) {
    SPD_ASSERT(samples > samples_before,
               "BM_CalibOverhead(on) learned no leaf rates");
  } else {
    // Disabled-mode contract: the store never sees a sample.
    SPD_ASSERT(samples == 0 && samples_before == 0,
               "BM_CalibOverhead(off) recorded " << samples << " samples");
  }
  obs::Calibration::global().clear();
  obs::set_calibration(calib_prev);
  state.counters["calib_samples"] =
      static_cast<double>(samples - samples_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_SubsetSubtract(benchmark::State& state) {
  rt::IndexSubset a(1), b(1);
  for (Coord k = 0; k < state.range(0); ++k) {
    a.add(rt::RectN::make1(k * 10, k * 10 + 6));
    b.add(rt::RectN::make1(k * 10 + 3, k * 10 + 8));
  }
  a.normalize();
  b.normalize();
  for (auto _ : state) {
    auto d = a.subtract(b);
    benchmark::DoNotOptimize(d.volume());
  }
}
BENCHMARK(BM_SubsetSubtract)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
