// Auto-scheduler vs the paper's hand-written schedules: SpMV, SDDMM,
// SpAdd3, and SpMTTKRP across CPU and GPU machine shapes.
//
// Each cell compares steady-state simulated time of (a) the hand-written
// universe (row-distribution) schedule from the benchmark harness, and (b)
// the schedule found by autosched::autoschedule_search with no human input,
// plus the searched plan and whether a second compile hits the plan cache.
#include <cstdio>

#include "autosched/autosched.h"
#include "autosched/plan_store.h"
#include "bench_util.h"
#include "obs/obs.h"

namespace spdbench {
namespace {

using base::KernelKind;

// Steady-state seconds/iteration, or nullopt for DNC / unsupported cells.
std::optional<double> measure(Statement& stmt, const sched::Schedule& schedule,
                              const rt::Machine& machine) {
  try {
    rt::Runtime runtime(machine);
    auto inst = comp::CompiledKernel::compile(stmt, schedule, machine)
                    .instantiate(runtime);
    inst->run(kWarmIters);
    runtime.reset_timing();
    inst->run(kTimedIters);
    return inst->report().sim_time / kTimedIters;
  } catch (const SpdError&) {
    return std::nullopt;
  }
}

std::string ms(const std::optional<double>& t) {
  return t.has_value() ? strprintf("%5.2f ms", *t * 1e3) : "     DNC";
}

void run_cell(KernelKind kind, const fmt::Coo& coo,
              const rt::Machine& machine) {
  // Hand-written: the paper's universe row-distribution schedule.
  Built hand = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
  const auto t_hand = measure(*hand.stmt, hand.out.schedule(), machine);

  // Searched: same statement, schedule wiped, auto-scheduled.
  Built searched = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
  searched.out.schedule() = sched::Schedule{};
  std::optional<double> t_search;
  std::string plan = "n/a";
  std::string recompile = "-";
  std::string diagnostics = "search failed: no instantiable candidate";
  try {
    autosched::Result r1 =
        autosched::autoschedule_search(*searched.stmt, machine);
    t_search = measure(*searched.stmt, r1.schedule, machine);
    plan = r1.recipe.str();
    diagnostics = r1.summary();
    autosched::Result r2 =
        autosched::autoschedule_search(*searched.stmt, machine);
    recompile = r2.from_cache ? "cache-hit" : "cache-MISS";
  } catch (const SpdError&) {
    // No legal candidate could be instantiated on this machine.
  }
  std::string speedup = "   -";
  if (t_hand.has_value() && t_search.has_value()) {
    speedup = strprintf("%4.2fx", *t_hand / *t_search);
  }
  std::printf("%-9s %s %s %s  %-12s %s\n", base::kernel_kind_name(kind),
              ms(t_hand).c_str(), ms(t_search).c_str(), speedup.c_str(),
              recompile.c_str(), plan.c_str());
  // Search diagnostics (Result::summary): what the search considered and
  // why this plan won — makes searched-vs-hand-written cells attributable.
  std::printf("%-9s   search: %s\n", "", diagnostics.c_str());
}

void run_machine(const std::string& title, const rt::Machine& machine) {
  print_header(strprintf("%s — hand-written vs searched schedules", title.c_str()));
  std::printf("%-9s %8s %8s %6s  %-12s %s\n", "kernel", "hand", "searched",
              "speedup", "recompile", "searched plan");
  print_rule(78);
  const fmt::Coo mat = data::powerlaw_matrix(6000, 6000, 120000, 1.3, 31);
  run_cell(KernelKind::SpMV, mat, machine);
  run_cell(KernelKind::SDDMM, mat, machine);
  run_cell(KernelKind::SpAdd3, mat, machine);
  const fmt::Coo ten = data::powerlaw_3tensor(800, 600, 400, 60000, 1.2, 32);
  run_cell(KernelKind::SpMTTKRP, ten, machine);
}

// The plan-service headline number: wall time of a cold autoschedule search
// vs the first compile of a warm process (store persisted, in-memory cache
// dropped, store reloaded). Also proves set_plan_store(false) bit-identity:
// a fresh search with the store disabled picks the same recipe, and running
// both schedules yields byte-identical outputs.
void bm_plan_store_cold_warm(const rt::Machine& machine) {
  print_header("BM_PlanStoreColdWarm — cold search vs warm-process compile");
  const char* path = "micro_plan_store.json";
  std::remove(path);
  autosched::PlanCache::global().clear();
  autosched::set_plan_store(true);

  const fmt::Coo mat = data::powerlaw_matrix(6000, 6000, 120000, 1.3, 33);
  Built cold = build_kernel(KernelKind::SpMV, mat, /*nz=*/false,
                            machine.num_procs());
  cold.out.schedule() = sched::Schedule{};
  const double c0 = obs::wall_us();
  const autosched::Result rc =
      autosched::autoschedule_search(*cold.stmt, machine);
  const double cold_us = obs::wall_us() - c0;

  // Persist, drop the in-memory cache, reload: exactly what a warm sibling
  // process sees on its first compile.
  autosched::save_plan_store(path);
  autosched::PlanCache::global().clear();
  const size_t loaded = autosched::load_plan_store(path);

  Built warm = build_kernel(KernelKind::SpMV, mat, /*nz=*/false,
                            machine.num_procs());
  warm.out.schedule() = sched::Schedule{};
  const double w0 = obs::wall_us();
  const autosched::Result rw =
      autosched::autoschedule_search(*warm.stmt, machine);
  const double warm_us = obs::wall_us() - w0;

  // Store off: a fresh full search must reproduce the same decision.
  autosched::set_plan_store(false);
  autosched::PlanCache::global().clear();
  Built off = build_kernel(KernelKind::SpMV, mat, /*nz=*/false,
                           machine.num_procs());
  off.out.schedule() = sched::Schedule{};
  const autosched::Result ro =
      autosched::autoschedule_search(*off.stmt, machine);
  autosched::set_plan_store(true);

  const auto t_warm = measure(*warm.stmt, rw.schedule, machine);
  const auto t_off = measure(*off.stmt, ro.schedule, machine);
  const bool outputs_identical =
      t_warm.has_value() && t_off.has_value() &&
      fmt::storage_equals(warm.out.storage(), off.out.storage(), 0.0);

  std::printf("cold search:   %9.0f us (%d enumerated, %d simulated)\n",
              cold_us, rc.enumerated, rc.simulated);
  std::printf("warm process:  %9.0f us (%zu plans loaded, %s, %d enumerated)\n",
              warm_us, loaded,
              rw.from_cache ? (rw.fuzzy ? "fuzzy hit" : "store hit")
                            : "store MISS",
              rw.enumerated);
  std::printf("speedup: %.0fx%s | store off vs on: recipes %s, outputs %s\n",
              warm_us > 0 ? cold_us / warm_us : 0.0,
              cold_us >= 10 * warm_us ? " (>= 10x)" : " (< 10x!)",
              ro.recipe == rw.recipe ? "equal" : "DIFFER",
              outputs_identical ? "byte-identical" : "DIFFER");
  const std::string plan = plan_summary();
  if (!plan.empty()) std::printf("%s\n", plan.c_str());
  std::remove(path);
}

}  // namespace
}  // namespace spdbench

int main() {
  using namespace spdbench;
  run_machine("4 CPU nodes", make_machine(4, rt::ProcKind::CPU, 4));
  run_machine("8 CPU nodes", make_machine(8, rt::ProcKind::CPU, 8));
  run_machine("1 node x 4 GPUs", make_machine(1, rt::ProcKind::GPU, 4));
  run_machine("2 nodes x 8 GPUs", make_machine(2, rt::ProcKind::GPU, 8));
  bm_plan_store_cold_warm(make_machine(4, rt::ProcKind::CPU, 4));
  return 0;
}
