// Auto-scheduler vs the paper's hand-written schedules: SpMV, SDDMM,
// SpAdd3, and SpMTTKRP across CPU and GPU machine shapes.
//
// Each cell compares steady-state simulated time of (a) the hand-written
// universe (row-distribution) schedule from the benchmark harness, and (b)
// the schedule found by autosched::autoschedule_search with no human input,
// plus the searched plan and whether a second compile hits the plan cache.
#include "autosched/autosched.h"
#include "bench_util.h"

namespace spdbench {
namespace {

using base::KernelKind;

// Steady-state seconds/iteration, or nullopt for DNC / unsupported cells.
std::optional<double> measure(Statement& stmt, const sched::Schedule& schedule,
                              const rt::Machine& machine) {
  try {
    rt::Runtime runtime(machine);
    auto inst = comp::CompiledKernel::compile(stmt, schedule, machine)
                    .instantiate(runtime);
    inst->run(kWarmIters);
    runtime.reset_timing();
    inst->run(kTimedIters);
    return inst->report().sim_time / kTimedIters;
  } catch (const SpdError&) {
    return std::nullopt;
  }
}

std::string ms(const std::optional<double>& t) {
  return t.has_value() ? strprintf("%5.2f ms", *t * 1e3) : "     DNC";
}

void run_cell(KernelKind kind, const fmt::Coo& coo,
              const rt::Machine& machine) {
  // Hand-written: the paper's universe row-distribution schedule.
  Built hand = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
  const auto t_hand = measure(*hand.stmt, hand.out.schedule(), machine);

  // Searched: same statement, schedule wiped, auto-scheduled.
  Built searched = build_kernel(kind, coo, /*nz=*/false, machine.num_procs());
  searched.out.schedule() = sched::Schedule{};
  std::optional<double> t_search;
  std::string plan = "n/a";
  std::string recompile = "-";
  std::string diagnostics = "search failed: no instantiable candidate";
  try {
    autosched::Result r1 =
        autosched::autoschedule_search(*searched.stmt, machine);
    t_search = measure(*searched.stmt, r1.schedule, machine);
    plan = r1.recipe.str();
    diagnostics = r1.summary();
    autosched::Result r2 =
        autosched::autoschedule_search(*searched.stmt, machine);
    recompile = r2.from_cache ? "cache-hit" : "cache-MISS";
  } catch (const SpdError&) {
    // No legal candidate could be instantiated on this machine.
  }
  std::string speedup = "   -";
  if (t_hand.has_value() && t_search.has_value()) {
    speedup = strprintf("%4.2fx", *t_hand / *t_search);
  }
  std::printf("%-9s %s %s %s  %-12s %s\n", base::kernel_kind_name(kind),
              ms(t_hand).c_str(), ms(t_search).c_str(), speedup.c_str(),
              recompile.c_str(), plan.c_str());
  // Search diagnostics (Result::summary): what the search considered and
  // why this plan won — makes searched-vs-hand-written cells attributable.
  std::printf("%-9s   search: %s\n", "", diagnostics.c_str());
}

void run_machine(const std::string& title, const rt::Machine& machine) {
  print_header(strprintf("%s — hand-written vs searched schedules", title.c_str()));
  std::printf("%-9s %8s %8s %6s  %-12s %s\n", "kernel", "hand", "searched",
              "speedup", "recompile", "searched plan");
  print_rule(78);
  const fmt::Coo mat = data::powerlaw_matrix(6000, 6000, 120000, 1.3, 31);
  run_cell(KernelKind::SpMV, mat, machine);
  run_cell(KernelKind::SDDMM, mat, machine);
  run_cell(KernelKind::SpAdd3, mat, machine);
  const fmt::Coo ten = data::powerlaw_3tensor(800, 600, 400, 60000, 1.2, 32);
  run_cell(KernelKind::SpMTTKRP, ten, machine);
}

}  // namespace
}  // namespace spdbench

int main() {
  using namespace spdbench;
  run_machine("4 CPU nodes", make_machine(4, rt::ProcKind::CPU, 4));
  run_machine("8 CPU nodes", make_machine(8, rt::ProcKind::CPU, 8));
  run_machine("1 node x 4 GPUs", make_machine(1, rt::ProcKind::GPU, 4));
  run_machine("2 nodes x 8 GPUs", make_machine(2, rt::ProcKind::GPU, 8));
  return 0;
}
