// Figure 11: GPU strong scaling heatmaps for SpMV, SpMM, SpAdd3 and SDDMM.
// For every (tensor, GPU count) cell each system's time in milliseconds is
// printed ("DNC" = did not complete: simulated OOM or unsupported), followed
// by the fastest-system grid that the paper renders as a colored heatmap.
#include <cstdlib>

#include "bench_util.h"

namespace spdbench {

struct GpuSystem {
  std::string name;
  // gpus -> result
  std::function<Result(const fmt::Coo&, int gpus)> run;
};

rt::Machine gpu_machine(int gpus) {
  const int nodes = (gpus + 3) / 4;
  return make_machine(nodes, rt::ProcKind::GPU, gpus);
}

void heatmap(const std::string& title,
             const std::vector<data::DatasetInfo>& datasets,
             const std::vector<int>& gpu_counts,
             std::vector<GpuSystem> systems,
             std::optional<base::KernelKind> auto_kind = std::nullopt) {
  // With $SPDISTAL_BENCH_AUTOSCHED, add a searched-schedule row whose
  // per-cell search diagnostics (autosched::Result::summary) are printed
  // under the tables, so searched-vs-hand-written cells are attributable.
  if (auto_kind.has_value() && std::getenv("SPDISTAL_BENCH_AUTOSCHED")) {
    const base::KernelKind kind = *auto_kind;
    systems.push_back({"SpD-auto", [kind](const fmt::Coo& coo, int g) {
                         return run_spdistal_autosched(kind, coo,
                                                       gpu_machine(g));
                       }});
  }
  print_header(title);
  // results[system][dataset][gpu] text cells.
  std::map<std::string, std::map<std::string, std::map<int, Result>>> grid;
  for (const auto& ds : datasets) {
    const fmt::Coo coo = ds.make();
    for (int g : gpu_counts) {
      for (const auto& sys : systems) {
        grid[sys.name][ds.name][g] = sys.run(coo, g);
      }
    }
  }
  for (const auto& sys : systems) {
    std::printf("\n[%s] time per iteration (ms)\n", sys.name.c_str());
    std::printf("%-18s", "tensor");
    for (int g : gpu_counts) std::printf(" %7dG", g);
    std::printf("\n");
    print_rule(78);
    for (const auto& ds : datasets) {
      std::printf("%-18s", ds.name.c_str());
      for (int g : gpu_counts) {
        std::printf(" %8s", cell(grid[sys.name][ds.name][g]).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n[fastest system per cell]\n");
  std::printf("%-18s", "tensor");
  for (int g : gpu_counts) std::printf(" %12dG", g);
  std::printf("\n");
  print_rule(78);
  for (const auto& ds : datasets) {
    std::printf("%-18s", ds.name.c_str());
    for (int g : gpu_counts) {
      std::string best = "DNC";
      double best_t = 0;
      for (const auto& sys : systems) {
        const Result& r = grid[sys.name][ds.name][g];
        if (r.ok() && (best == "DNC" || r.seconds < best_t)) {
          best = sys.name;
          best_t = r.seconds;
        }
      }
      std::printf(" %13s", best.c_str());
    }
    std::printf("\n");
  }
  for (const auto& sys : systems) {
    if (sys.name != "SpD-auto") continue;
    for (const auto& ds : datasets) {
      for (int g : gpu_counts) {
        const Result& r = grid[sys.name][ds.name][g];
        if (r.note.empty()) continue;
        std::printf("  SpD-auto %2dG %-18s %s\n", g, ds.name.c_str(),
                    r.note.c_str());
      }
    }
  }
}

}  // namespace spdbench

int main() {
  using namespace spdbench;
  using base::KernelKind;
  const auto& matrices = data::matrix_datasets();

  heatmap("Figure 11a: GPU SpMV (row-based; vs PETSc, Trilinos)", matrices,
          {1, 2, 4, 8},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SpMV, coo, false,
                                     gpu_machine(g));
               }},
              {"PETSc",
               [](const fmt::Coo& coo, int g) {
                 return run_petsc(KernelKind::SpMV, coo, gpu_machine(g));
               }},
              {"Trilinos",
               [](const fmt::Coo& coo, int g) {
                 return run_trilinos(KernelKind::SpMV, coo, gpu_machine(g));
               }},
          },
          KernelKind::SpMV);

  heatmap(
      "Figure 11b: GPU SpMM (load-balanced nz + memory-conserving Batched)",
      matrices, {1, 2, 4, 8, 16},
      {
          {"SpDISTAL",
           [](const fmt::Coo& coo, int g) {
             return run_spdistal(KernelKind::SpMM, coo, true, gpu_machine(g));
           }},
          {"SpD-Batched",
           [](const fmt::Coo& coo, int g) {
             return run_spdistal_spmm_batched(coo, gpu_machine(g));
           }},
          {"PETSc",
           [](const fmt::Coo& coo, int g) {
             return run_petsc(KernelKind::SpMM, coo, gpu_machine(g));
           }},
          {"Trilinos",
           [](const fmt::Coo& coo, int g) {
             return run_trilinos(KernelKind::SpMM, coo, gpu_machine(g));
           }},
      },
      KernelKind::SpMM);

  heatmap("Figure 11c: GPU SpAdd3 (row-based; PETSc lacks GPU support)",
          matrices, {1, 2, 4, 8, 16},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SpAdd3, coo, false,
                                     gpu_machine(g));
               }},
              {"Trilinos",
               [](const fmt::Coo& coo, int g) {
                 return run_trilinos(KernelKind::SpAdd3, coo, gpu_machine(g));
               }},
          },
          KernelKind::SpAdd3);

  heatmap("Figure 11d: GPU SDDMM (nz; vs SpDISTAL's CPU kernel per node)",
          matrices, {1, 2, 4, 8, 16},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SDDMM, coo, true,
                                     gpu_machine(g));
               }},
              {"SpD-CPU",
               [](const fmt::Coo& coo, int g) {
                 const int nodes = (g + 3) / 4;
                 return run_spdistal(KernelKind::SDDMM, coo, true,
                                     make_machine(nodes, rt::ProcKind::CPU,
                                                  nodes));
               }},
          },
          KernelKind::SDDMM);
  return 0;
}
