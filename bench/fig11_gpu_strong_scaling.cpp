// Figure 11: GPU strong scaling heatmaps for SpMV, SpMM, SpAdd3 and SDDMM.
// For every (tensor, GPU count) cell each system's time in milliseconds is
// printed ("DNC" = did not complete: simulated OOM or unsupported), followed
// by the fastest-system grid that the paper renders as a colored heatmap.
#include "bench_util.h"

namespace spdbench {

struct GpuSystem {
  std::string name;
  // gpus -> result
  std::function<Result(const fmt::Coo&, int gpus)> run;
};

rt::Machine gpu_machine(int gpus) {
  const int nodes = (gpus + 3) / 4;
  return make_machine(nodes, rt::ProcKind::GPU, gpus);
}

void heatmap(const std::string& title,
             const std::vector<data::DatasetInfo>& datasets,
             const std::vector<int>& gpu_counts,
             const std::vector<GpuSystem>& systems) {
  print_header(title);
  // results[system][dataset][gpu] text cells.
  std::map<std::string, std::map<std::string, std::map<int, Result>>> grid;
  for (const auto& ds : datasets) {
    const fmt::Coo coo = ds.make();
    for (int g : gpu_counts) {
      for (const auto& sys : systems) {
        grid[sys.name][ds.name][g] = sys.run(coo, g);
      }
    }
  }
  for (const auto& sys : systems) {
    std::printf("\n[%s] time per iteration (ms)\n", sys.name.c_str());
    std::printf("%-18s", "tensor");
    for (int g : gpu_counts) std::printf(" %7dG", g);
    std::printf("\n");
    print_rule(78);
    for (const auto& ds : datasets) {
      std::printf("%-18s", ds.name.c_str());
      for (int g : gpu_counts) {
        std::printf(" %8s", cell(grid[sys.name][ds.name][g]).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n[fastest system per cell]\n");
  std::printf("%-18s", "tensor");
  for (int g : gpu_counts) std::printf(" %12dG", g);
  std::printf("\n");
  print_rule(78);
  for (const auto& ds : datasets) {
    std::printf("%-18s", ds.name.c_str());
    for (int g : gpu_counts) {
      std::string best = "DNC";
      double best_t = 0;
      for (const auto& sys : systems) {
        const Result& r = grid[sys.name][ds.name][g];
        if (r.ok() && (best == "DNC" || r.seconds < best_t)) {
          best = sys.name;
          best_t = r.seconds;
        }
      }
      std::printf(" %13s", best.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace spdbench

int main() {
  using namespace spdbench;
  using base::KernelKind;
  const auto& matrices = data::matrix_datasets();

  heatmap("Figure 11a: GPU SpMV (row-based; vs PETSc, Trilinos)", matrices,
          {1, 2, 4, 8},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SpMV, coo, false,
                                     gpu_machine(g));
               }},
              {"PETSc",
               [](const fmt::Coo& coo, int g) {
                 return run_petsc(KernelKind::SpMV, coo, gpu_machine(g));
               }},
              {"Trilinos",
               [](const fmt::Coo& coo, int g) {
                 return run_trilinos(KernelKind::SpMV, coo, gpu_machine(g));
               }},
          });

  heatmap(
      "Figure 11b: GPU SpMM (load-balanced nz + memory-conserving Batched)",
      matrices, {1, 2, 4, 8, 16},
      {
          {"SpDISTAL",
           [](const fmt::Coo& coo, int g) {
             return run_spdistal(KernelKind::SpMM, coo, true, gpu_machine(g));
           }},
          {"SpD-Batched",
           [](const fmt::Coo& coo, int g) {
             return run_spdistal_spmm_batched(coo, gpu_machine(g));
           }},
          {"PETSc",
           [](const fmt::Coo& coo, int g) {
             return run_petsc(KernelKind::SpMM, coo, gpu_machine(g));
           }},
          {"Trilinos",
           [](const fmt::Coo& coo, int g) {
             return run_trilinos(KernelKind::SpMM, coo, gpu_machine(g));
           }},
      });

  heatmap("Figure 11c: GPU SpAdd3 (row-based; PETSc lacks GPU support)",
          matrices, {1, 2, 4, 8, 16},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SpAdd3, coo, false,
                                     gpu_machine(g));
               }},
              {"Trilinos",
               [](const fmt::Coo& coo, int g) {
                 return run_trilinos(KernelKind::SpAdd3, coo, gpu_machine(g));
               }},
          });

  heatmap("Figure 11d: GPU SDDMM (nz; vs SpDISTAL's CPU kernel per node)",
          matrices, {1, 2, 4, 8, 16},
          {
              {"SpDISTAL",
               [](const fmt::Coo& coo, int g) {
                 return run_spdistal(KernelKind::SDDMM, coo, true,
                                     gpu_machine(g));
               }},
              {"SpD-CPU",
               [](const fmt::Coo& coo, int g) {
                 const int nodes = (g + 3) / 4;
                 return run_spdistal(KernelKind::SDDMM, coo, true,
                                     make_machine(nodes, rt::ProcKind::CPU,
                                                  nodes));
               }},
          });
  return 0;
}
